(* Census bench artifact: canonical-fingerprint throughput and the
   bucketed-vs-pairwise census speedup, written to BENCH_census.json.

   Three self-gates, checked on exit:
   - the fingerprint refinement pass must allocate nothing after
     warmup ([fp_minor_w] exactly 0.0 on every row);
   - on the classical-inventory census rows at n >= 5 the
     fingerprint-bucketed classify must beat the pairwise Iso_min
     baseline by at least 5x (skipped under --smoke: one-rep timings
     are noise);
   - both classifications must report identical class structures —
     the bucketing is an optimization, not a different answer.

   Run with --smoke for a tiny-budget crash/format check;
   MINEQ_BENCH_QUOTA=<seconds> scales the repetition budgets.  All
   measurements here are serial (the stream row pins --jobs 1), so
   the artifact is never marked degraded: 1-core containers measure
   the same thing CI's multi-core runner does. *)

module Fp = Mineq.Fingerprint
module Census = Mineq.Census
module Cx = Mineq.Counterexample
module L = Mineq.Link_spec
module Memo = Mineq_engine.Memo
module Stream = Mineq_engine.Stream_census

let smoke = Bench_util.smoke_requested ()

(* Fingerprint throughput ------------------------------------------- *)

type fp_row = {
  f_n : int;
  f_nodes : int;
  f_us : float;
  f_minor_w : float;
}

let fp_row ~n ~reps =
  let g = Mineq.Classical.network Omega ~n in
  let p = Mineq.Mi_digraph.packed g in
  let scratch = Fp.scratch_for p in
  let op () = Fp.into scratch p in
  let reps = Bench_util.scaled_reps ~reps in
  let us = Bench_util.time_us ~reps op in
  let minor_w = Bench_util.minor_words_per_op ~reps op in
  Printf.printf "fingerprint_n%-2d  %8.1f us/fp      %10.0f fps/s     minor %.1f w\n%!" n us
    (1e6 /. us) minor_w;
  { f_n = n; f_nodes = n * (1 lsl (n - 1)); f_us = us; f_minor_w = minor_w }

(* Bucketed vs pairwise census -------------------------------------- *)

(* The classical inventory plus the spec families the generators
   draw: relabelled classical copies (isomorphic, so pairwise pays an
   Iso_min *success* per copy), PIPID and buddy draws (a few classes
   each) and raw random-link networks (almost every one its own
   class, so pairwise pays a quadratic number of Iso_min
   *refutations* — the expensive outcome the fingerprint removes). *)
let inventory ~n ~relabels ~pipid ~randoms ~buddies =
  let rng = Random.State.make [| 0xce2505; n |] in
  let classical = List.map snd (Mineq.Classical.all_networks ~n) in
  let relabelled =
    List.concat_map
      (fun g -> List.init relabels (fun _ -> Cx.relabelled_equivalent rng g))
      classical
  in
  let pipids = List.init pipid (fun _ -> L.random_pipid_network rng ~n) in
  let randoms = List.init randoms (fun _ -> L.random_network rng ~n) in
  let buddies = List.init buddies (fun _ -> Cx.random_buddy_network rng ~n) in
  List.mapi (fun i g -> (g, i)) (classical @ relabelled @ pipids @ randoms @ buddies)

(* Fingerprints memoise on the network record, which would let the
   second classify ride on the first one's cache; rebuild fresh
   records (same conns arrays, new caches) so both sides pay their
   full cost. *)
let strip_caches tagged =
  List.map
    (fun (g, tag) -> (Mineq.Mi_digraph.create (Mineq.Mi_digraph.connections g), tag))
    tagged

type census_row = {
  k_n : int;
  k_items : int;
  k_classes : int;
  k_buckets : int;
  k_pair_ms : float;
  k_bucket_ms : float;
  k_agree : bool;
}

let census_row ~n ~relabels ~pipid ~randoms ~buddies =
  let tagged = inventory ~n ~relabels ~pipid ~randoms ~buddies in
  let pair_result, pair_ms =
    Bench_util.time_ms (fun () -> Census.classify_pairwise (strip_caches tagged))
  in
  let bucket_result, bucket_ms =
    Bench_util.time_ms (fun () -> Census.classify (strip_caches tagged))
  in
  let agree =
    List.length pair_result = List.length bucket_result
    && List.for_all2
         (fun (a : _ Census.classified) (b : _ Census.classified) ->
           a.members = b.members
           && Option.is_some (Mineq.Iso_min.find a.representative b.representative))
         pair_result bucket_result
  in
  let buckets, classes = Census.bucket_stats tagged in
  Printf.printf
    "census_n%-2d       %4d items  %3d classes  %3d buckets  pairwise %8.1f ms  bucketed \
     %8.1f ms  %5.1fx\n%!"
    n (List.length tagged) classes buckets pair_ms bucket_ms (pair_ms /. bucket_ms);
  { k_n = n;
    k_items = List.length tagged;
    k_classes = classes;
    k_buckets = buckets;
    k_pair_ms = pair_ms;
    k_bucket_ms = bucket_ms;
    k_agree = agree
  }

(* Streaming census ------------------------------------------------- *)

type stream_row = {
  m_n : int;
  m_gen : string;
  m_specs : int;
  m_classes : int;
  m_buckets : int;
  m_ms : float;
}

let stream_row ~n ~specs ~generator =
  let specs = if smoke then min specs 64 else specs in
  let s = ref None in
  let _, ms =
    Bench_util.time_ms (fun () ->
        s := Some (Stream.run ~jobs:1 ~root:7 ~n ~specs ~generator))
  in
  let s = Option.get !s in
  Printf.printf "stream_%s_n%-2d %6d specs   %3d classes  %3d buckets  %8.1f ms  %8.0f \
                 specs/s\n%!"
    (Stream.generator_name generator)
    n specs
    (List.length s.Stream.classes)
    s.Stream.buckets ms
    (float_of_int specs /. ms *. 1e3);
  { m_n = n;
    m_gen = Stream.generator_name generator;
    m_specs = specs;
    m_classes = List.length s.Stream.classes;
    m_buckets = s.Stream.buckets;
    m_ms = ms
  }

(* Memo keyings ----------------------------------------------------- *)

type memo_row = {
  o_keying : string;
  o_probes : int;
  o_hits : int;
  o_misses : int;
}

(* The same Zipf-flavoured probe mix for both keyings: the classical
   networks plus relabelled copies, probed twice.  The structural key
   only hits on exact repeats; the fingerprint key identifies the
   whole isomorphism class, so every relabelled copy after the first
   classical probe hits too. *)
let memo_rows ~n =
  let rng = Random.State.make [| 0x3e30; n |] in
  let classical = List.map snd (Mineq.Classical.all_networks ~n) in
  let probes =
    classical
    @ List.concat_map (fun g -> List.init 3 (fun _ -> Cx.relabelled_equivalent rng g)) classical
  in
  let probes = probes @ probes in
  let row keying =
    let memo = Memo.create ~keying () in
    List.iter
      (fun g ->
        ignore (Memo.find_or_compute memo g Mineq.Equivalence.by_characterization))
      (strip_caches (List.map (fun g -> (g, ())) probes) |> List.map fst);
    let r =
      { o_keying = Memo.keying_name keying;
        o_probes = List.length probes;
        o_hits = Memo.hits memo;
        o_misses = Memo.misses memo
      }
    in
    Printf.printf "memo_%-12s %4d probes  %4d hits  %4d misses  hit rate %.2f\n%!" r.o_keying
      r.o_probes r.o_hits r.o_misses
      (float_of_int r.o_hits /. float_of_int (r.o_hits + r.o_misses));
    r
  in
  (* explicit lets: a list literal evaluates right to left, which
     would reverse the printed progress *)
  let structural = row Memo.Structural in
  let fingerprint = row Memo.Fingerprint in
  [ structural; fingerprint ]

(* ------------------------------------------------------------------ *)

let () =
  Printf.printf "census bench%s\n%!" (if smoke then " (smoke)" else "");
  let f4 = fp_row ~n:4 ~reps:20000 in
  let f5 = fp_row ~n:5 ~reps:8000 in
  let f6 = fp_row ~n:6 ~reps:2000 in
  let f7 = fp_row ~n:7 ~reps:400 in
  let f8 = fp_row ~n:8 ~reps:100 in
  let fps = [ f4; f5; f6; f7; f8 ] in
  let scale k = if smoke then max 1 (k / 8) else k in
  let c3 = census_row ~n:3 ~relabels:(scale 3) ~pipid:(scale 16) ~randoms:(scale 8) ~buddies:(scale 4) in
  let c4 = census_row ~n:4 ~relabels:(scale 3) ~pipid:(scale 16) ~randoms:(scale 8) ~buddies:(scale 4) in
  let c5 = census_row ~n:5 ~relabels:(scale 3) ~pipid:(scale 12) ~randoms:(scale 8) ~buddies:(scale 4) in
  let censuses = [ c3; c4; c5 ] in
  let s4 = stream_row ~n:4 ~specs:2000 ~generator:Stream.Pipid in
  let s5 = stream_row ~n:5 ~specs:500 ~generator:Stream.Pipid in
  let s4a = stream_row ~n:4 ~specs:1000 ~generator:Stream.Affine in
  let streams = [ s4; s5; s4a ] in
  let memos = memo_rows ~n:5 in
  let zero_alloc = List.for_all (fun r -> r.f_minor_w <= 0.0) fps in
  let agree = List.for_all (fun r -> r.k_agree) censuses in
  let min_speedup_n5 =
    List.fold_left
      (fun acc r -> if r.k_n >= 5 then min acc (r.k_pair_ms /. r.k_bucket_ms) else acc)
      infinity censuses
  in
  let speedup_ok = smoke || min_speedup_n5 >= 5.0 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
  Buffer.add_string buf (Printf.sprintf "  \"ocaml\": %S,\n" Sys.ocaml_version);
  Buffer.add_string buf
    (Printf.sprintf "  \"cores\": %d,\n" (Domain.recommended_domain_count ()));
  (* Serial measurements throughout (the stream row pins jobs=1), so
     a 1-core container is never a degraded capture. *)
  Buffer.add_string buf "  \"degraded\": false,\n";
  Buffer.add_string buf "  \"fingerprint\": [\n";
  let last = List.length fps - 1 in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"n\": %d, \"nodes\": %d, \"us_per_fp\": %.2f, \"fps_per_sec\": %.0f, \
            \"fp_minor_w\": %.1f}%s\n"
           r.f_n r.f_nodes r.f_us (1e6 /. r.f_us) r.f_minor_w
           (if i = last then "" else ",")))
    fps;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"census\": [\n";
  let last = List.length censuses - 1 in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"n\": %d, \"items\": %d, \"classes\": %d, \"buckets\": %d, \
            \"collisions\": %d, \"collision_rate\": %.4f, \"pairwise_ms\": %.2f, \
            \"bucketed_ms\": %.2f, \"speedup\": %.2f, \"agree\": %b}%s\n"
           r.k_n r.k_items r.k_classes r.k_buckets (r.k_classes - r.k_buckets)
           (float_of_int (r.k_classes - r.k_buckets) /. float_of_int r.k_classes)
           r.k_pair_ms r.k_bucket_ms (r.k_pair_ms /. r.k_bucket_ms) r.k_agree
           (if i = last then "" else ",")))
    censuses;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"stream\": [\n";
  let last = List.length streams - 1 in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"n\": %d, \"generator\": %S, \"specs\": %d, \"classes\": %d, \"buckets\": \
            %d, \"ms\": %.1f, \"specs_per_sec\": %.0f}%s\n"
           r.m_n r.m_gen r.m_specs r.m_classes r.m_buckets r.m_ms
           (float_of_int r.m_specs /. r.m_ms *. 1e3)
           (if i = last then "" else ",")))
    streams;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"memo\": [\n";
  let last = List.length memos - 1 in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"keying\": %S, \"probes\": %d, \"hits\": %d, \"misses\": %d, \"hit_rate\": \
            %.4f}%s\n"
           r.o_keying r.o_probes r.o_hits r.o_misses
           (float_of_int r.o_hits /. float_of_int (r.o_hits + r.o_misses))
           (if i = last then "" else ",")))
    memos;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"gates\": {\"fp_zero_alloc\": %b, \"census_agree\": %b, \"min_speedup_n5plus\": \
        %s, \"speedup_ok\": %b}\n"
       zero_alloc agree
       (if min_speedup_n5 = infinity then "null" else Printf.sprintf "%.2f" min_speedup_n5)
       speedup_ok);
  Buffer.add_string buf "}\n";
  let path = Bench_util.output_path ~default:"BENCH_census.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" path;
  if not agree then begin
    Printf.eprintf "FAIL: bucketed census disagrees with the pairwise baseline\n%!";
    exit 1
  end;
  if not zero_alloc then begin
    Printf.eprintf "FAIL: the fingerprint pass allocates (see fp_minor_w)\n%!";
    exit 1
  end;
  if not speedup_ok then begin
    Printf.eprintf "FAIL: bucketed census speedup %.2fx at n>=5 is below the 5x gate\n%!"
      min_speedup_n5;
    exit 1
  end
