(* Service bench artifact: sustained queries/sec, p50/p99 latency and
   warm-cache hit rate for the mineq serve layer, written to
   BENCH_serve.json.

   The query mix simulates a large user population hammering the
   classical inventory: a Zipf-ranked pool of named networks (the six
   classical families across several sizes, plus random/PIPID draws
   in the tail) and a fixed op mix (equiv-heavy, with banyan, lint
   and blocking traffic).  Two measurement paths:

   - [direct]: requests evaluated straight through Service.handle —
     the ceiling of the compute core with warm caches;
   - [socket]: a forked daemon on a temp Unix socket, one synchronous
     client, full frame round trips — what a real client observes.

   Three self-gates, checked on exit:
   - the Zipf-mix hit rate must reach the floor (0.70; skipped under
     --smoke, where the tiny request budget can't amortize the cold
     misses);
   - a snapshot round trip must preserve every cache entry, reject a
     corrupted checksum, and yield a warm hit in a fresh service that
     adopted it;
   - every socket response must arrive well-formed with ok:true.

   Client and server measurement loops are serial by design, so the
   artifact is never marked degraded: 1-core containers measure the
   same protocol path CI's multi-core runner does. *)

module Serve = Mineq_serve
module Proto = Serve.Proto
module Seeds = Mineq_engine.Seeds

let smoke = Bench_util.smoke_requested ()

(* The Zipf-ranked query pool ---------------------------------------- *)

let pool_items =
  let classical =
    List.concat_map
      (fun n ->
        List.map
          (fun kind -> (Mineq.Classical.name kind, n))
          Mineq.Classical.all_kinds)
      [ 4; 5; 6 ]
  in
  let tail prefix count n =
    List.init count (fun i -> (Printf.sprintf "%s:%d" prefix (i + 1), n))
  in
  Array.of_list (classical @ tail "random" 50 4 @ tail "pipid" 32 4)

let zipf_s = 1.1

(* Inverse-CDF sampling over 1/rank^s weights. *)
let zipf_cdf =
  let n = Array.length pool_items in
  let w = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) zipf_s) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i wi ->
      acc := !acc +. (wi /. total);
      cdf.(i) <- !acc)
    w;
  cdf.(n - 1) <- 1.0;
  cdf

let sample_item rng =
  let u = Random.State.float rng 1.0 in
  let rec bisect lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if zipf_cdf.(mid) < u then bisect (mid + 1) hi else bisect lo mid
  in
  pool_items.(bisect 0 (Array.length zipf_cdf - 1))

(* equiv-heavy op mix: cumulative thresholds. *)
let sample_op rng =
  let u = Random.State.float rng 1.0 in
  if u < 0.60 then "equiv" else if u < 0.75 then "banyan" else if u < 0.90 then "lint"
  else "blocking"

let request_of ~op ~network ~n : Proto.request =
  { id = Proto.Null; op; network = Some network; spec = None; n; method_ = None;
    deadline_ms = None
  }

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(max 0 (min (n - 1) (int_of_float (Float.round (p *. float_of_int (n - 1))))))

(* Direct dispatch ---------------------------------------------------- *)

type mix_result = {
  requests : int;
  qps : float;
  p50_us : float;
  p99_us : float;
  hit_rate : float;
}

let run_direct ~requests =
  let service = Serve.Service.create () in
  let rng = Seeds.state 42 in
  let lat = Array.make requests 0.0 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to requests - 1 do
    let network, n = sample_item rng in
    let op = sample_op rng in
    let a = Unix.gettimeofday () in
    let resp = Serve.Service.handle service (request_of ~op ~network ~n) in
    if not (Proto.response_ok resp) then begin
      Printf.eprintf "FAIL: direct %s %s@%d answered %s\n%!" op network n
        (Proto.json_to_string resp);
      exit 1
    end;
    lat.(i) <- (Unix.gettimeofday () -. a) *. 1e6
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  Array.sort compare lat;
  let r =
    { requests;
      qps = float_of_int requests /. elapsed;
      p50_us = percentile lat 0.5;
      p99_us = percentile lat 0.99;
      hit_rate = Serve.Service.hit_rate service
    }
  in
  Printf.printf "direct  %7d reqs  %9.0f q/s  p50 %7.1f us  p99 %8.1f us  hit %.3f\n%!"
    r.requests r.qps r.p50_us r.p99_us r.hit_rate;
  (service, r)

(* Socket loopback ---------------------------------------------------- *)

let fresh_socket_path () =
  let path = Filename.temp_file "mineq_serve_bench" ".sock" in
  Sys.remove path;
  path

let run_socket ~requests =
  let path = fresh_socket_path () in
  match Unix.fork () with
  | 0 ->
      (* Daemon child: quiet stderr (the shutdown metrics dump would
         interleave with the bench's own output). *)
      let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
      Unix.dup2 devnull Unix.stderr;
      Unix.close devnull;
      let config =
        { (Serve.Server.default_config ~socket_path:path) with
          jobs = 1;
          handle_signals = false
        }
      in
      Serve.Server.run config (Serve.Service.create ());
      Stdlib.exit 0
  | child -> (
      match Serve.Server.connect ~retries:100 ~path () with
      | Error m ->
          Printf.eprintf "FAIL: %s\n%!" m;
          ignore (Unix.waitpid [] child);
          exit 1
      | Ok fd ->
          let rng = Seeds.state 43 in
          let lat = Array.make requests 0.0 in
          let all_ok = ref true in
          let t0 = Unix.gettimeofday () in
          for i = 0 to requests - 1 do
            let network, n = sample_item rng in
            let op = sample_op rng in
            let a = Unix.gettimeofday () in
            (match
               Serve.Server.call fd (Proto.request_to_json (request_of ~op ~network ~n))
             with
            | Ok resp -> if not (Proto.response_ok resp) then all_ok := false
            | Error _ -> all_ok := false);
            lat.(i) <- (Unix.gettimeofday () -. a) *. 1e6
          done;
          let elapsed = Unix.gettimeofday () -. t0 in
          let server_hit_rate =
            match Serve.Server.call fd (Proto.Obj [ ("op", Proto.Str "stats") ]) with
            | Ok resp -> (
                match Proto.to_float (Proto.member "hit_rate" resp) with
                | Some r -> r
                | None ->
                    all_ok := false;
                    nan)
            | Error _ ->
                all_ok := false;
                nan
          in
          (match Serve.Server.call fd (Proto.Obj [ ("op", Proto.Str "shutdown") ]) with
          | Ok resp -> if not (Proto.response_ok resp) then all_ok := false
          | Error _ -> all_ok := false);
          (try Unix.close fd with Unix.Unix_error _ -> ());
          let _, status = Unix.waitpid [] child in
          if status <> Unix.WEXITED 0 then all_ok := false;
          Array.sort compare lat;
          let r =
            { requests;
              qps = float_of_int requests /. elapsed;
              p50_us = percentile lat 0.5;
              p99_us = percentile lat 0.99;
              hit_rate = server_hit_rate
            }
          in
          Printf.printf
            "socket  %7d reqs  %9.0f q/s  p50 %7.1f us  p99 %8.1f us  hit %.3f\n%!"
            r.requests r.qps r.p50_us r.p99_us r.hit_rate;
          (r, !all_ok))

(* Snapshot round trip ------------------------------------------------ *)

type snapshot_result = {
  entries : int;
  file_bytes : int;
  save_ms : float;
  load_ms : float;
  roundtrip_ok : bool;
  corrupt_rejected : bool;
  warm_hit : bool;
}

let equiv_hits service =
  (* The equiv cache's hit counter, read through the stats op so the
     bench exercises the same surface clients do. *)
  let resp =
    Serve.Service.handle service
      { Proto.id = Proto.Null; op = "stats"; network = None; spec = None; n = 4;
        method_ = None; deadline_ms = None
      }
  in
  Proto.to_int (Proto.member "hits" (Proto.member "equiv" (Proto.member "caches" resp)))

let run_snapshot service =
  let payload = Serve.Service.to_payload service in
  let entries = Serve.Snapshot.entry_count payload in
  let path = Filename.temp_file "mineq_serve_bench" ".snap" in
  let (), save_ms = Bench_util.time_ms (fun () -> Serve.Snapshot.save ~path payload) in
  let file_bytes = (Unix.stat path).Unix.st_size in
  let loaded, load_ms = Bench_util.time_ms (fun () -> Serve.Snapshot.load ~path) in
  let roundtrip_ok =
    match loaded with
    | Ok p -> Serve.Snapshot.entry_count p = entries
    | Error _ -> false
  in
  (* Flip one payload byte: the checksum must catch it. *)
  let corrupt_rejected =
    let bytes =
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Bytes.of_string s
    in
    let i = Bytes.length bytes - 1 in
    Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 0x5a));
    let oc = open_out_bin path in
    output_bytes oc bytes;
    close_out oc;
    match Serve.Snapshot.load ~path with
    | Error Serve.Snapshot.Bad_checksum -> true
    | Ok _ | Error _ -> false
  in
  (* A fresh service that adopts the snapshot must answer the hottest
     query from cache: its equiv hit counter moves 0 -> 1. *)
  let warm_hit =
    match loaded with
    | Error _ -> false
    | Ok p ->
        let fresh = Serve.Service.create () in
        let adopted = Serve.Service.adopt fresh p in
        let network, n = pool_items.(0) in
        let resp = Serve.Service.handle fresh (request_of ~op:"equiv" ~network ~n) in
        adopted = entries && Proto.response_ok resp && equiv_hits fresh = Some 1
  in
  Sys.remove path;
  let r = { entries; file_bytes; save_ms; load_ms; roundtrip_ok; corrupt_rejected; warm_hit } in
  Printf.printf
    "snapshot %6d entries  %7d bytes  save %6.2f ms  load %6.2f ms  roundtrip %b  \
     corrupt-rejected %b  warm-hit %b\n%!"
    r.entries r.file_bytes r.save_ms r.load_ms r.roundtrip_ok r.corrupt_rejected r.warm_hit;
  r

(* Main --------------------------------------------------------------- *)

let () =
  let direct_requests = if smoke then 300 else 6000 in
  let socket_requests = if smoke then 150 else 3000 in
  let service, direct = run_direct ~requests:direct_requests in
  let socket, socket_ok = run_socket ~requests:socket_requests in
  let snapshot = run_snapshot service in
  let hit_floor = 0.70 in
  let hit_ok = smoke || direct.hit_rate >= hit_floor in
  let snapshot_ok = snapshot.roundtrip_ok && snapshot.corrupt_rejected && snapshot.warm_hit in
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"mineq-serve-bench/1\",\n";
  add "  \"smoke\": %b,\n" smoke;
  add "  \"ocaml\": %S,\n" Sys.ocaml_version;
  add "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  (* Serial client, serial dispatch: never a degraded capture. *)
  add "  \"degraded\": false,\n";
  add "  \"zipf\": {\"items\": %d, \"s\": %.2f, \"op_mix\": {\"equiv\": 0.60, \"banyan\": \
       0.15, \"lint\": 0.15, \"blocking\": 0.10}},\n"
    (Array.length pool_items) zipf_s;
  let mix name (r : mix_result) extra =
    add
      "  %S: {\"requests\": %d, \"qps\": %.0f, \"p50_us\": %.1f, \"p99_us\": %.1f, \
       \"hit_rate\": %.4f%s},\n"
      name r.requests r.qps r.p50_us r.p99_us r.hit_rate extra
  in
  mix "direct" direct "";
  mix "socket" socket (Printf.sprintf ", \"all_ok\": %b" socket_ok);
  add
    "  \"snapshot\": {\"entries\": %d, \"file_bytes\": %d, \"save_ms\": %.2f, \"load_ms\": \
     %.2f, \"roundtrip_ok\": %b, \"corrupt_rejected\": %b, \"warm_hit\": %b},\n"
    snapshot.entries snapshot.file_bytes snapshot.save_ms snapshot.load_ms
    snapshot.roundtrip_ok snapshot.corrupt_rejected snapshot.warm_hit;
  add
    "  \"gates\": {\"hit_rate_floor\": %.2f, \"hit_rate_ok\": %b, \"snapshot_roundtrip\": \
     %b, \"socket_ok\": %b}\n"
    hit_floor hit_ok snapshot_ok socket_ok;
  add "}\n";
  let path = Bench_util.output_path ~default:"BENCH_serve.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" path;
  if not hit_ok then begin
    Printf.eprintf "FAIL: Zipf-mix hit rate %.3f is below the %.2f floor\n%!"
      direct.hit_rate hit_floor;
    exit 1
  end;
  if not snapshot_ok then begin
    Printf.eprintf
      "FAIL: snapshot round trip (roundtrip %b, corrupt_rejected %b, warm_hit %b)\n%!"
      snapshot.roundtrip_ok snapshot.corrupt_rejected snapshot.warm_hit;
    exit 1
  end;
  if not socket_ok then begin
    Printf.eprintf "FAIL: a socket response was missing, malformed or not ok\n%!";
    exit 1
  end
