(* Routing bench artifact: permutations per second for the Benes
   looping compiler, destination-tag path setup throughput, plane
   ensembles, and connection churn (incremental rearrangement vs full
   recompile), written to BENCH_route.json.

   Every measured hot path is required to allocate nothing: each row
   carries a [*_minor_w] column (minor-heap words per operation) and
   the process exits 1 if any of them is above zero — the regression
   gate for the preallocated-scratch design of lib/route.  A second
   gate routes 1000 random permutations on the n = 12 Benes (4096
   terminals, 23 stages) and verifies each against Plan.realizes;
   looping must never fail on a Benes, so any failure is a bug, not a
   statistic.

   Run with --smoke for a tiny-budget crash/format check (the n = 12
   gate then runs 10 trials); MINEQ_BENCH_QUOTA=<seconds> scales the
   repetition budgets like the bechamel grid. *)

module Loop = Mineq_route.Loop
module Plan = Mineq_route.Plan
module Bit_follow = Mineq_route.Bit_follow
module Planes = Mineq_route.Planes
module Rearrange = Mineq_route.Rearrange
module Seeds = Mineq_engine.Seeds

let smoke = Bench_util.smoke_requested ()

let shuffle st img =
  let n = Array.length img in
  for i = 0 to n - 1 do
    img.(i) <- i
  done;
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = img.(i) in
    img.(i) <- img.(j);
    img.(j) <- tmp
  done

(* A fixed pool of permutations, drawn outside the measured region so
   the hot path only routes. *)
let perm_pool st ~terminals ~count =
  Array.init count (fun _ ->
      let img = Array.make terminals 0 in
      shuffle st img;
      img)

type loop_row = {
  l_n : int;
  l_terminals : int;
  l_stages : int;
  l_us : float;
  l_minor_w : float;
}

let loop_row st ~n ~reps =
  let router = Loop.create n in
  let plan = Loop.plan router in
  let pool = perm_pool st ~terminals:(Loop.terminals router) ~count:32 in
  let k = ref 0 in
  let op () =
    let img = pool.(!k land 31) in
    incr k;
    Plan.reset plan;
    Loop.route router plan img
  in
  let reps = Bench_util.scaled_reps ~reps in
  let us = Bench_util.time_us ~reps op in
  let minor_w = Bench_util.minor_words_per_op ~reps op in
  Printf.printf "benes_loop_n%-2d   %8.1f us/perm   %10.0f perms/s   minor %.1f w\n%!" n us
    (1e6 /. us) minor_w;
  { l_n = n;
    l_terminals = Loop.terminals router;
    l_stages = (2 * n) - 1;
    l_us = us;
    l_minor_w = minor_w
  }

type bf_row = {
  b_name : string;
  b_n : int;
  b_pairs : int;
  b_routed : int;  (** pairs of the fixed test permutation that connect *)
  b_us : float;  (** per full-permutation setup attempt *)
  b_minor_w : float;
}

(* Module level so the measured closure does not rebuild it per call. *)
let rec setup_all router plan img i acc =
  if i = Array.length img then acc
  else if Bit_follow.try_route router plan ~input:i ~output:img.(i) then
    setup_all router plan img (i + 1) (acc + 1)
  else setup_all router plan img (i + 1) acc

let bit_follow_row st ~n ~reps =
  let g = Mineq.Classical.network Omega ~n in
  let router = Option.get (Bit_follow.of_network g) in
  let plan = Plan.create (Bit_follow.fabric router) in
  let terminals = 1 lsl n in
  let img = Array.make terminals 0 in
  shuffle st img;
  let routed = ref 0 in
  let op () =
    Plan.reset plan;
    routed := setup_all router plan img 0 0
  in
  let reps = Bench_util.scaled_reps ~reps in
  let us = Bench_util.time_us ~reps op in
  let minor_w = Bench_util.minor_words_per_op ~reps op in
  let name = Printf.sprintf "omega_n%d_tag_setup" n in
  Printf.printf "%-16s %8.1f us/perm   routed %d/%d   minor %.1f w\n%!" name us !routed
    terminals minor_w;
  { b_name = name; b_n = n; b_pairs = terminals; b_routed = !routed; b_us = us;
    b_minor_w = minor_w }

type planes_row = {
  p_planes : int;
  p_n : int;
  p_routed : int;
  p_pairs : int;
  p_us : float;
  p_minor_w : float;
}

let planes_row st ~n ~planes ~reps =
  let g = Mineq.Classical.network Omega ~n in
  let router = Option.get (Bit_follow.of_network g) in
  let ens = Planes.create router ~planes in
  let terminals = 1 lsl n in
  let img = Array.make terminals 0 in
  shuffle st img;
  let routed = ref 0 in
  let op () =
    Planes.reset ens;
    routed := Planes.connect_all ens img
  in
  let reps = Bench_util.scaled_reps ~reps in
  let us = Bench_util.time_us ~reps op in
  let minor_w = Bench_util.minor_words_per_op ~reps op in
  Printf.printf "omega_n%d_planes%d %8.1f us/perm   routed %d/%d   minor %.1f w\n%!" n planes
    us !routed terminals minor_w;
  { p_planes = planes; p_n = n; p_routed = !routed; p_pairs = terminals; p_us = us;
    p_minor_w = minor_w }

(* Connection churn: incremental rearrangement vs full recompile.

   Each row holds a live (possibly partial) configuration on B(n) and
   measures three steady-state workloads:
   - toggle: disconnect one input and reconnect the same pair — the
     single-connection churn the speedup gate targets;
   - swap: two disconnects + two cross-connects exchanging the
     outputs of two inputs — churn that actually exercises the
     alternating-chain rearrangement (moved_per_connect reports how
     much);
   - full: Plan.reset + Loop.route of the current image — what every
     connection change cost before the incremental engine.
   After each measured workload the plan must still realize the
   tracked image and pass the engine's self-check; failures feed the
   bench's exit-1 gate, as do non-zero minor-word rates.

   The swap workload gets its own (smaller) rep budget: rearrangement
   chains terminate only at free switch slots, so at full occupancy
   they sweep most of the fabric and cascade through the recursion
   levels — the n = 8 occupancy-1.0 row keeps that pathology on
   record (hundreds of connections moved per connect), while the
   larger rows run at 90% occupancy where chains stay short.  Toggle
   never rearranges (the freed slots are re-taken with the same
   colours), so its cost is occupancy-independent. *)
type churn_row = {
  c_n : int;
  c_occupancy : float;
  c_live : int;
  c_toggle_us : float;  (* per connection change (disconnect + reconnect) *)
  c_swap_us : float;  (* per connection change (swap moves two) *)
  c_full_us : float;  (* per full recompile of the same image *)
  c_moved : float;  (* connections rearranged per swap-workload connect *)
  c_toggle_minor_w : float;
  c_swap_minor_w : float;
  c_full_minor_w : float;
  c_failures : int;
}

let churn_row st ~n ~occupancy ~reps ~swap_reps ~full_reps =
  let loop = Loop.create n in
  let rr = Rearrange.of_loop loop in
  let plan = Rearrange.plan rr in
  let nt = Rearrange.terminals rr in
  (* a random image at the requested occupancy, compiled by the
     looping algorithm and adopted via rescan — the bench thereby
     also covers the compile-then-churn handoff *)
  let perm = Array.make nt 0 in
  shuffle st perm;
  let order = Array.make nt 0 in
  shuffle st order;
  let live = int_of_float ((occupancy *. float_of_int nt) +. 0.5) in
  let img = Array.make nt (-1) in
  for k = 0 to live - 1 do
    img.(order.(k)) <- perm.(order.(k))
  done;
  Plan.reset plan;
  Loop.route loop plan img;
  Rearrange.rescan rr;
  (* schedules drawn outside the measured region: live inputs to
     toggle, and distinct live pairs to swap *)
  let tsched = Array.init 256 (fun _ -> order.(Random.State.int st live)) in
  let sched_a = Array.make 256 0 in
  let sched_b = Array.make 256 0 in
  for j = 0 to 255 do
    let a = Random.State.int st live in
    let rec other () =
      let b = Random.State.int st live in
      if b = a then other () else b
    in
    sched_a.(j) <- order.(a);
    sched_b.(j) <- order.(other ())
  done;
  let k = ref 0 in
  let op_toggle () =
    let i = tsched.(!k land 255) in
    incr k;
    ignore (Rearrange.disconnect rr ~input:i);
    ignore (Rearrange.connect rr ~input:i ~output:img.(i))
  in
  let op_swap () =
    let a = sched_a.(!k land 255) in
    let b = sched_b.(!k land 255) in
    incr k;
    let oa = img.(a) in
    let ob = img.(b) in
    ignore (Rearrange.disconnect rr ~input:a);
    ignore (Rearrange.disconnect rr ~input:b);
    ignore (Rearrange.connect rr ~input:a ~output:ob);
    ignore (Rearrange.connect rr ~input:b ~output:oa);
    img.(a) <- ob;
    img.(b) <- oa
  in
  let plan2 = Loop.plan loop in
  let op_full () =
    Plan.reset plan2;
    Loop.route loop plan2 img
  in
  let failures = ref 0 in
  let sound () =
    if not (Plan.realizes plan img && Rearrange.consistent rr) then incr failures
  in
  let reps = Bench_util.scaled_reps ~reps in
  let swap_reps = Bench_util.scaled_reps ~reps:swap_reps in
  let full_reps = Bench_util.scaled_reps ~reps:full_reps in
  let toggle_us = Bench_util.time_us ~reps op_toggle in
  let toggle_minor_w = Bench_util.minor_words_per_op ~reps op_toggle in
  sound ();
  let moved0 = Rearrange.moved_total rr in
  let connects0 = Rearrange.connects rr in
  let swap_us = Bench_util.time_us ~reps:swap_reps op_swap /. 2.0 in
  let swap_minor_w = Bench_util.minor_words_per_op ~reps:swap_reps op_swap in
  sound ();
  let moved =
    float_of_int (Rearrange.moved_total rr - moved0)
    /. float_of_int (max 1 (Rearrange.connects rr - connects0))
  in
  let full_us = Bench_util.time_us ~reps:full_reps op_full in
  let full_minor_w = Bench_util.minor_words_per_op ~reps:full_reps op_full in
  if not (Plan.realizes plan2 img) then incr failures;
  Printf.printf
    "churn_n%-2d_occ%-3.0f toggle %6.2f us/conn  swap %6.2f us/conn  full %8.1f us  \
     %5.0fx  moved %.2f  minor %.1f/%.1f/%.1f w\n\
     %!"
    n (100.0 *. occupancy) toggle_us swap_us full_us
    (if toggle_us > 0.0 then full_us /. toggle_us else 0.0)
    moved toggle_minor_w swap_minor_w full_minor_w;
  { c_n = n;
    c_occupancy = occupancy;
    c_live = live;
    c_toggle_us = toggle_us;
    c_swap_us = swap_us;
    c_full_us = full_us;
    c_moved = moved;
    c_toggle_minor_w = toggle_minor_w;
    c_swap_minor_w = swap_minor_w;
    c_full_minor_w = full_minor_w;
    c_failures = !failures
  }

(* Gate: random mixed churn (the survey's toggle policy) must leave
   the engine in a state a from-scratch compile of the same partial
   image reproduces exactly. *)
let rec churn_free_output st rr nt =
  let o = Random.State.int st nt in
  if Rearrange.input_of rr o < 0 then o else churn_free_output st rr nt

let churn_gate st ~ops =
  let loop = Loop.create 10 in
  let rr = Rearrange.of_loop loop in
  let nt = Rearrange.terminals rr in
  for _ = 1 to ops do
    let i = Random.State.int st nt in
    if Rearrange.output_of rr i >= 0 then ignore (Rearrange.disconnect rr ~input:i)
    else ignore (Rearrange.connect rr ~input:i ~output:(churn_free_output st rr nt))
  done;
  let img = Rearrange.image rr in
  let scratch = Loop.plan loop in
  Loop.route loop scratch img;
  let failures =
    (if Rearrange.consistent rr then 0 else 1)
    + (if Plan.realizes (Rearrange.plan rr) img then 0 else 1)
    + if Plan.to_array (Rearrange.plan rr) = Plan.to_array scratch then 0 else 1
  in
  Printf.printf "churn gate: %d random ops at n=10, %d failure(s)\n%!" ops failures;
  failures

(* Gate: the looping algorithm must route every permutation on a
   Benes; verify [trials] random ones at n = 12 against the plan's own
   propagation. *)
let loop_gate st ~trials =
  let router = Loop.create 12 in
  let plan = Loop.plan router in
  let img = Array.make (Loop.terminals router) 0 in
  let failures = ref 0 in
  for _ = 1 to trials do
    shuffle st img;
    Plan.reset plan;
    Loop.route router plan img;
    if not (Plan.realizes plan img) then incr failures
  done;
  Printf.printf "loop gate: %d/%d random permutations realized at n=12\n%!"
    (trials - !failures) trials;
  !failures

let () =
  let st = Seeds.state 0x526f757465 in
  Printf.printf "route bench%s\n%!" (if smoke then " (smoke)" else "");
  (* explicit lets: list literals evaluate right to left, which would
     reverse the printed progress *)
  let l4 = loop_row st ~n:4 ~reps:2000 in
  let l8 = loop_row st ~n:8 ~reps:400 in
  let l10 = loop_row st ~n:10 ~reps:100 in
  let l12 = loop_row st ~n:12 ~reps:25 in
  let loops = [ l4; l8; l10; l12 ] in
  let b6 = bit_follow_row st ~n:6 ~reps:1000 in
  let b10 = bit_follow_row st ~n:10 ~reps:100 in
  let bfs = [ b6; b10 ] in
  let p1 = planes_row st ~n:8 ~planes:1 ~reps:200 in
  let p2 = planes_row st ~n:8 ~planes:2 ~reps:200 in
  let p4 = planes_row st ~n:8 ~planes:4 ~reps:200 in
  let planes = [ p1; p2; p4 ] in
  let c8 = churn_row st ~n:8 ~occupancy:1.0 ~reps:20000 ~swap_reps:2000 ~full_reps:400 in
  let c10 = churn_row st ~n:10 ~occupancy:0.9 ~reps:10000 ~swap_reps:2000 ~full_reps:100 in
  let c10h = churn_row st ~n:10 ~occupancy:0.5 ~reps:10000 ~swap_reps:4000 ~full_reps:100 in
  let c12 = churn_row st ~n:12 ~occupancy:0.9 ~reps:5000 ~swap_reps:100 ~full_reps:25 in
  let churns = [ c8; c10; c10h; c12 ] in
  let churn_ops = if smoke then 200 else 20000 in
  let churn_failures =
    churn_gate st ~ops:churn_ops
    + List.fold_left (fun acc r -> acc + r.c_failures) 0 churns
  in
  (* single-connection churn must beat the full recompile by at least
     5x wherever the fabric is large enough for the gap to be
     structural rather than noise (n >= 10).  A toggle too fast for
     the timer (smoke budgets) reads as 0.0 us; report that as
     speedup 0.0 rather than inf (which is not JSON) and let it pass
     the gate. *)
  let speedup r = if r.c_toggle_us > 0.0 then r.c_full_us /. r.c_toggle_us else 0.0 in
  let churn_speedup_ok =
    List.for_all
      (fun r -> r.c_n < 10 || r.c_toggle_us <= 0.0 || speedup r >= 5.0)
      churns
  in
  let trials = if smoke then 10 else 1000 in
  let failures = loop_gate st ~trials in
  let alloc_rows =
    List.map (fun r -> r.l_minor_w) loops
    @ List.map (fun r -> r.b_minor_w) bfs
    @ List.map (fun r -> r.p_minor_w) planes
    @ List.concat_map
        (fun r -> [ r.c_toggle_minor_w; r.c_swap_minor_w; r.c_full_minor_w ])
        churns
  in
  let zero_alloc = List.for_all (fun w -> w <= 0.0) alloc_rows in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
  Buffer.add_string buf (Printf.sprintf "  \"ocaml\": %S,\n" Sys.ocaml_version);
  Buffer.add_string buf "  \"benes_loop\": [\n";
  let last = List.length loops - 1 in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"n\": %d, \"terminals\": %d, \"stages\": %d, \"us_per_perm\": %.2f, \
            \"perms_per_sec\": %.0f, \"route_minor_w\": %.1f}%s\n"
           r.l_n r.l_terminals r.l_stages r.l_us (1e6 /. r.l_us) r.l_minor_w
           (if i = last then "" else ",")))
    loops;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"bit_follow\": [\n";
  let last = List.length bfs - 1 in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"n\": %d, \"pairs\": %d, \"routed\": %d, \
            \"us_per_perm\": %.2f, \"try_route_minor_w\": %.1f}%s\n"
           r.b_name r.b_n r.b_pairs r.b_routed r.b_us r.b_minor_w
           (if i = last then "" else ",")))
    bfs;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"planes\": [\n";
  let last = List.length planes - 1 in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"n\": %d, \"planes\": %d, \"routed\": %d, \"pairs\": %d, \
            \"us_per_perm\": %.2f, \"connect_minor_w\": %.1f}%s\n"
           r.p_n r.p_planes r.p_routed r.p_pairs r.p_us r.p_minor_w
           (if i = last then "" else ",")))
    planes;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"churn\": [\n";
  let last = List.length churns - 1 in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"n\": %d, \"occupancy\": %.2f, \"live\": %d, \
            \"toggle_us_per_conn\": %.3f, \"swap_us_per_conn\": %.3f, \
            \"full_us_per_recompile\": %.2f, \"speedup_vs_full\": %.1f, \
            \"moved_per_swap_connect\": %.3f, \"toggle_minor_w\": %.1f, \
            \"swap_minor_w\": %.1f, \"full_minor_w\": %.1f}%s\n"
           r.c_n r.c_occupancy r.c_live r.c_toggle_us r.c_swap_us r.c_full_us
           (speedup r) r.c_moved r.c_toggle_minor_w
           r.c_swap_minor_w r.c_full_minor_w
           (if i = last then "" else ",")))
    churns;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"gates\": {\"loop_n12_trials\": %d, \"loop_n12_failures\": %d, \
        \"churn_ops\": %d, \"churn_failures\": %d, \"churn_speedup_ok\": %b, \
        \"zero_alloc\": %b}\n"
       trials failures churn_ops churn_failures churn_speedup_ok zero_alloc);
  Buffer.add_string buf "}\n";
  let path = Bench_util.output_path ~default:"BENCH_route.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" path;
  if failures > 0 then begin
    Printf.eprintf "FAIL: looping failed %d/%d permutations on the n=12 Benes\n%!" failures
      trials;
    exit 1
  end;
  if churn_failures > 0 then begin
    Printf.eprintf
      "FAIL: %d churn soundness failure(s) (plan stopped realizing its image)\n%!"
      churn_failures;
    exit 1
  end;
  if not churn_speedup_ok then begin
    Printf.eprintf
      "FAIL: incremental churn under 5x faster than full recompile at n>=10\n%!";
    exit 1
  end;
  if not zero_alloc then begin
    Printf.eprintf "FAIL: a routing hot path allocates (see *_minor_w)\n%!";
    exit 1
  end
