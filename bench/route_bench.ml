(* Routing bench artifact: permutations per second for the Benes
   looping compiler, destination-tag path setup throughput, and plane
   ensembles, written to BENCH_route.json.

   Every measured hot path is required to allocate nothing: each row
   carries a [*_minor_w] column (minor-heap words per operation) and
   the process exits 1 if any of them is above zero — the regression
   gate for the preallocated-scratch design of lib/route.  A second
   gate routes 1000 random permutations on the n = 12 Benes (4096
   terminals, 23 stages) and verifies each against Plan.realizes;
   looping must never fail on a Benes, so any failure is a bug, not a
   statistic.

   Run with --smoke for a tiny-budget crash/format check (the n = 12
   gate then runs 10 trials); MINEQ_BENCH_QUOTA=<seconds> scales the
   repetition budgets like the bechamel grid. *)

module Loop = Mineq_route.Loop
module Plan = Mineq_route.Plan
module Bit_follow = Mineq_route.Bit_follow
module Planes = Mineq_route.Planes
module Seeds = Mineq_engine.Seeds

let smoke = Bench_util.smoke_requested ()

let shuffle st img =
  let n = Array.length img in
  for i = 0 to n - 1 do
    img.(i) <- i
  done;
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = img.(i) in
    img.(i) <- img.(j);
    img.(j) <- tmp
  done

(* A fixed pool of permutations, drawn outside the measured region so
   the hot path only routes. *)
let perm_pool st ~terminals ~count =
  Array.init count (fun _ ->
      let img = Array.make terminals 0 in
      shuffle st img;
      img)

type loop_row = {
  l_n : int;
  l_terminals : int;
  l_stages : int;
  l_us : float;
  l_minor_w : float;
}

let loop_row st ~n ~reps =
  let router = Loop.create n in
  let plan = Loop.plan router in
  let pool = perm_pool st ~terminals:(Loop.terminals router) ~count:32 in
  let k = ref 0 in
  let op () =
    let img = pool.(!k land 31) in
    incr k;
    Plan.reset plan;
    Loop.route router plan img
  in
  let reps = Bench_util.scaled_reps ~reps in
  let us = Bench_util.time_us ~reps op in
  let minor_w = Bench_util.minor_words_per_op ~reps op in
  Printf.printf "benes_loop_n%-2d   %8.1f us/perm   %10.0f perms/s   minor %.1f w\n%!" n us
    (1e6 /. us) minor_w;
  { l_n = n;
    l_terminals = Loop.terminals router;
    l_stages = (2 * n) - 1;
    l_us = us;
    l_minor_w = minor_w
  }

type bf_row = {
  b_name : string;
  b_n : int;
  b_pairs : int;
  b_routed : int;  (** pairs of the fixed test permutation that connect *)
  b_us : float;  (** per full-permutation setup attempt *)
  b_minor_w : float;
}

(* Module level so the measured closure does not rebuild it per call. *)
let rec setup_all router plan img i acc =
  if i = Array.length img then acc
  else if Bit_follow.try_route router plan ~input:i ~output:img.(i) then
    setup_all router plan img (i + 1) (acc + 1)
  else setup_all router plan img (i + 1) acc

let bit_follow_row st ~n ~reps =
  let g = Mineq.Classical.network Omega ~n in
  let router = Option.get (Bit_follow.of_network g) in
  let plan = Plan.create (Bit_follow.fabric router) in
  let terminals = 1 lsl n in
  let img = Array.make terminals 0 in
  shuffle st img;
  let routed = ref 0 in
  let op () =
    Plan.reset plan;
    routed := setup_all router plan img 0 0
  in
  let reps = Bench_util.scaled_reps ~reps in
  let us = Bench_util.time_us ~reps op in
  let minor_w = Bench_util.minor_words_per_op ~reps op in
  let name = Printf.sprintf "omega_n%d_tag_setup" n in
  Printf.printf "%-16s %8.1f us/perm   routed %d/%d   minor %.1f w\n%!" name us !routed
    terminals minor_w;
  { b_name = name; b_n = n; b_pairs = terminals; b_routed = !routed; b_us = us;
    b_minor_w = minor_w }

type planes_row = {
  p_planes : int;
  p_n : int;
  p_routed : int;
  p_pairs : int;
  p_us : float;
  p_minor_w : float;
}

let planes_row st ~n ~planes ~reps =
  let g = Mineq.Classical.network Omega ~n in
  let router = Option.get (Bit_follow.of_network g) in
  let ens = Planes.create router ~planes in
  let terminals = 1 lsl n in
  let img = Array.make terminals 0 in
  shuffle st img;
  let routed = ref 0 in
  let op () =
    Planes.reset ens;
    routed := Planes.connect_all ens img
  in
  let reps = Bench_util.scaled_reps ~reps in
  let us = Bench_util.time_us ~reps op in
  let minor_w = Bench_util.minor_words_per_op ~reps op in
  Printf.printf "omega_n%d_planes%d %8.1f us/perm   routed %d/%d   minor %.1f w\n%!" n planes
    us !routed terminals minor_w;
  { p_planes = planes; p_n = n; p_routed = !routed; p_pairs = terminals; p_us = us;
    p_minor_w = minor_w }

(* Gate: the looping algorithm must route every permutation on a
   Benes; verify [trials] random ones at n = 12 against the plan's own
   propagation. *)
let loop_gate st ~trials =
  let router = Loop.create 12 in
  let plan = Loop.plan router in
  let img = Array.make (Loop.terminals router) 0 in
  let failures = ref 0 in
  for _ = 1 to trials do
    shuffle st img;
    Plan.reset plan;
    Loop.route router plan img;
    if not (Plan.realizes plan img) then incr failures
  done;
  Printf.printf "loop gate: %d/%d random permutations realized at n=12\n%!"
    (trials - !failures) trials;
  !failures

let () =
  let st = Seeds.state 0x526f757465 in
  Printf.printf "route bench%s\n%!" (if smoke then " (smoke)" else "");
  (* explicit lets: list literals evaluate right to left, which would
     reverse the printed progress *)
  let l4 = loop_row st ~n:4 ~reps:2000 in
  let l8 = loop_row st ~n:8 ~reps:400 in
  let l10 = loop_row st ~n:10 ~reps:100 in
  let l12 = loop_row st ~n:12 ~reps:25 in
  let loops = [ l4; l8; l10; l12 ] in
  let b6 = bit_follow_row st ~n:6 ~reps:1000 in
  let b10 = bit_follow_row st ~n:10 ~reps:100 in
  let bfs = [ b6; b10 ] in
  let p1 = planes_row st ~n:8 ~planes:1 ~reps:200 in
  let p2 = planes_row st ~n:8 ~planes:2 ~reps:200 in
  let p4 = planes_row st ~n:8 ~planes:4 ~reps:200 in
  let planes = [ p1; p2; p4 ] in
  let trials = if smoke then 10 else 1000 in
  let failures = loop_gate st ~trials in
  let alloc_rows =
    List.map (fun r -> r.l_minor_w) loops
    @ List.map (fun r -> r.b_minor_w) bfs
    @ List.map (fun r -> r.p_minor_w) planes
  in
  let zero_alloc = List.for_all (fun w -> w <= 0.0) alloc_rows in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
  Buffer.add_string buf (Printf.sprintf "  \"ocaml\": %S,\n" Sys.ocaml_version);
  Buffer.add_string buf "  \"benes_loop\": [\n";
  let last = List.length loops - 1 in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"n\": %d, \"terminals\": %d, \"stages\": %d, \"us_per_perm\": %.2f, \
            \"perms_per_sec\": %.0f, \"route_minor_w\": %.1f}%s\n"
           r.l_n r.l_terminals r.l_stages r.l_us (1e6 /. r.l_us) r.l_minor_w
           (if i = last then "" else ",")))
    loops;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"bit_follow\": [\n";
  let last = List.length bfs - 1 in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"n\": %d, \"pairs\": %d, \"routed\": %d, \
            \"us_per_perm\": %.2f, \"try_route_minor_w\": %.1f}%s\n"
           r.b_name r.b_n r.b_pairs r.b_routed r.b_us r.b_minor_w
           (if i = last then "" else ",")))
    bfs;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"planes\": [\n";
  let last = List.length planes - 1 in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"n\": %d, \"planes\": %d, \"routed\": %d, \"pairs\": %d, \
            \"us_per_perm\": %.2f, \"connect_minor_w\": %.1f}%s\n"
           r.p_n r.p_planes r.p_routed r.p_pairs r.p_us r.p_minor_w
           (if i = last then "" else ",")))
    planes;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"gates\": {\"loop_n12_trials\": %d, \"loop_n12_failures\": %d, \
        \"zero_alloc\": %b}\n"
       trials failures zero_alloc);
  Buffer.add_string buf "}\n";
  let path = Bench_util.output_path ~default:"BENCH_route.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" path;
  if failures > 0 then begin
    Printf.eprintf "FAIL: looping failed %d/%d permutations on the n=12 Benes\n%!" failures
      trials;
    exit 1
  end;
  if not zero_alloc then begin
    Printf.eprintf "FAIL: a routing hot path allocates (see *_minor_w)\n%!";
    exit 1
  end
