(* Engine bench artifact: measures the parallel batch drivers serial
   vs jobs = 2 and 4 (warm pools, so the one-time domain-spawn cost is
   excluded), checks the bit-identical guarantee on each, and writes
   the machine-readable BENCH_engine.json next to the repo root.

   [cores] is Domain.recommended_domain_count: the wall-time ratios
   only mean anything relative to it.  When cores < 2 the file carries
   "degraded": true — the parallel rows then measure a clamped
   (sequential) pool and a sub-1x "speedup" is expected noise, not a
   regression.  Pools are created with the default clamping; a one
   line note reports any row whose requested width was clamped.

   Each workload also records the minor-heap words a serial run
   allocates (serial_minor_mw, in megawords): the per-PR trend line
   for the allocation budget of the batch drivers.

   The "baseline_pr1" block preserves the speedups of the pre-stealing
   engine (single-lock queue, per-item futures, measured on a 1-core
   container) as the before-row of the before/after comparison.

   Run with --smoke for a tiny-budget crash/format check. *)

module Pool = Mineq_engine.Pool
module Memo = Mineq_engine.Memo
module Batch = Mineq_engine.Batch

let time = Bench_util.time_ms
let smoke = Bench_util.smoke_requested ()

type row = {
  name : string;
  serial_ms : float;
  jobs2_ms : float;
  jobs4_ms : float;
  jobs2_actual : int;
  jobs4_actual : int;
  serial_minor_mw : float;
  identical : bool;
}

let note_clamp ~requested ~actual =
  if actual < requested then
    Printf.printf "note: jobs=%d clamped to %d (recommended_domain_count)\n%!" requested
      actual

let measure name serial parallel equal =
  let serial_res, serial_ms = time serial in
  let serial_minor_mw = Bench_util.minor_words_per_op ~reps:1 serial /. 1e6 in
  let in_pool jobs =
    let pool = Pool.create ~jobs () in
    note_clamp ~requested:jobs ~actual:(Pool.jobs pool);
    ignore (parallel pool);
    (* warm the domains *)
    let res, ms = time (fun () -> parallel pool) in
    let actual = Pool.jobs pool in
    Pool.shutdown pool;
    (res, ms, actual)
  in
  let res2, jobs2_ms, jobs2_actual = in_pool 2 in
  let res4, jobs4_ms, jobs4_actual = in_pool 4 in
  let identical = equal serial_res res2 && equal serial_res res4 in
  Printf.printf
    "%-24s serial %8.1f ms   jobs=2 %8.1f ms   jobs=4 %8.1f ms   minor %6.2f Mw   \
     identical=%b\n%!"
    name serial_ms jobs2_ms jobs4_ms serial_minor_mw identical;
  { name; serial_ms; jobs2_ms; jobs4_ms; jobs2_actual; jobs4_actual; serial_minor_mw;
    identical }

let census_row () =
  let samples = if smoke then 10 else 150 in
  let attempts = if smoke then 40 else 400 in
  measure "census_classify_n3"
    (fun () -> Batch.sample_census ~jobs:1 ~root:25 ~n:3 ~samples ~attempts)
    (fun pool -> Batch.sample_census_in pool ~root:25 ~n:3 ~samples ~attempts)
    ( = )

let faults_row () =
  let samples = if smoke then 40 else 800 in
  let cascade = Mineq.Cascade.of_mi_digraph (Mineq.Baseline.network 5) in
  measure "fault_sweep_n5"
    (fun () -> Batch.fault_survival ~jobs:1 ~root:7 cascade ~faults:[ 1; 2; 4; 8 ] ~samples)
    (fun pool -> Batch.fault_survival_in pool ~root:7 cascade ~faults:[ 1; 2; 4; 8 ] ~samples)
    ( = )

let sim_row () =
  let g = Mineq.Classical.network Omega ~n:5 in
  let cycles = if smoke then 50 else 500 in
  let config =
    { Mineq_sim.Network_sim.default_config with warmup = (if smoke then 10 else 100); cycles }
  in
  measure "sim_replications_n5"
    (fun () -> Batch.simulate_runs ~jobs:1 ~root:8 ~config ~replications:8 g)
    (fun pool -> Batch.simulate_runs_in pool ~root:8 ~config ~replications:8 g)
    ( = )

let memo_stats () =
  (* Pairwise table over the six classical networks at n = 5: 36
     cells probe two verdicts each; the memo collapses them to six
     computations. *)
  let nets = Mineq.Classical.all_networks ~n:5 in
  let _, cold_ms = time (fun () -> Batch.pairwise ~jobs:1 nets) in
  let memo = Memo.create () in
  let _, memo_ms = time (fun () -> Batch.pairwise ~jobs:1 ~memo nets) in
  (* [time] runs three passes over the same memo: 6 misses from the
     first, hits for everything else. *)
  Printf.printf "%-24s nomemo %8.1f ms   memo %8.1f ms   hit_rate %.3f\n%!"
    "pairwise_memo_n5" cold_ms memo_ms (Memo.hit_rate memo);
  (cold_ms, memo_ms, Memo.hit_rate memo)

(* The pre-stealing pool (PR 1: global mutex queue, a future per item,
   fixed mc_chunk = 100), as captured in the committed BENCH artifact
   of that PR on a 1-core container. *)
let baseline_pr1 =
  [ ("census_classify_n3", 0.61); ("fault_sweep_n5", 0.29); ("sim_replications_n5", 0.16) ]

let () =
  let cores = Domain.recommended_domain_count () in
  let degraded = cores < 2 in
  Printf.printf "engine bench (recommended domains: %d%s)\n%!" cores
    (if degraded then ", DEGRADED: parallel rows run clamped/sequential" else "");
  let census = census_row () in
  let faults = faults_row () in
  let sim = sim_row () in
  let rows = [ census; faults; sim ] in
  List.iter
    (fun r ->
      let before = List.assoc r.name baseline_pr1 in
      Printf.printf "%-24s speedup_jobs4 before %.2fx   after %.2fx\n%!" r.name before
        (r.serial_ms /. r.jobs4_ms))
    rows;
  let nomemo_ms, memo_ms, hit_rate = memo_stats () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"cores\": %d,\n" cores);
  Buffer.add_string buf (Printf.sprintf "  \"degraded\": %b,\n" degraded);
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
  Buffer.add_string buf (Printf.sprintf "  \"ocaml\": %S,\n" Sys.ocaml_version);
  Buffer.add_string buf "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"serial_ms\": %.2f, \"jobs2_ms\": %.2f, \"jobs4_ms\": \
            %.2f, \"jobs2_actual\": %d, \"jobs4_actual\": %d, \"speedup_jobs4\": %.2f, \
            \"serial_minor_mw\": %.3f, \"identical\": %b}%s\n"
           r.name r.serial_ms r.jobs2_ms r.jobs4_ms r.jobs2_actual r.jobs4_actual
           (r.serial_ms /. r.jobs4_ms)
           r.serial_minor_mw r.identical
           (if i = 2 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    "  \"baseline_pr1\": {\"note\": \"single-lock queue + per-item futures, 1-core \
     container\", \"workloads\": [\n";
  List.iteri
    (fun i (name, speedup) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"name\": %S, \"speedup_jobs4\": %.2f}%s\n" name speedup
           (if i = 2 then "" else ",")))
    baseline_pr1;
  Buffer.add_string buf "  ]},\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"memo\": {\"workload\": \"pairwise_classical_n5\", \"nomemo_ms\": %.2f, \
        \"memo_ms\": %.2f, \"hit_rate\": %.3f}\n"
       nomemo_ms memo_ms hit_rate);
  Buffer.add_string buf "}\n";
  let path = Bench_util.output_path ~default:"BENCH_engine.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" path
