(* Shared measurement helpers for the bench executables.  Both
   artifact writers (analysis_bench, engine_bench) used to carry their
   own copy of the best-of-three timing loop; this module is the one
   copy, plus the allocation probe the packed-kernel rows report. *)

let smoke_requested () = Array.exists (String.equal "--smoke") Sys.argv

let output_path ~default =
  (* First non-flag argument after the executable name, if any. *)
  let rec scan i =
    if i >= Array.length Sys.argv then default
    else if String.length Sys.argv.(i) > 0 && Sys.argv.(i).[0] <> '-' then Sys.argv.(i)
    else scan (i + 1)
  in
  scan 1

let time_us ~reps f =
  (* Best of three batches, to damp scheduler noise. *)
  let batch () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Sys.opaque_identity (f ()))
    done;
    let t1 = Unix.gettimeofday () in
    (t1 -. t0) *. 1e6 /. float_of_int reps
  in
  let m1 = batch () in
  let m2 = batch () in
  let m3 = batch () in
  List.fold_left min m1 [ m2; m3 ]

let time_ms f =
  (* Best of three single runs, keeping the first run's result. *)
  let once () =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let t1 = Unix.gettimeofday () in
    (r, (t1 -. t0) *. 1e3)
  in
  let r1, m1 = once () in
  let _, m2 = once () in
  let _, m3 = once () in
  (r1, List.fold_left min m1 [ m2; m3 ])

let minor_words_per_op ~reps f =
  (* One warmup call so lazy one-time setup (e.g. packing a network)
     is not billed to the per-op figure. *)
  ignore (Sys.opaque_identity (f ()));
  let before = Gc.minor_words () in
  for _ = 1 to reps do
    ignore (Sys.opaque_identity (f ()))
  done;
  let after = Gc.minor_words () in
  (after -. before) /. float_of_int reps
