(* Shared measurement helpers for the bench executables.  Both
   artifact writers (analysis_bench, engine_bench) used to carry their
   own copy of the best-of-three timing loop; this module is the one
   copy, plus the allocation probe the packed-kernel rows report. *)

let smoke_requested () = Array.exists (String.equal "--smoke") Sys.argv

let output_path ~default =
  (* First [.json]-suffixed positional argument after the executable
     name, if any.  The old "first non-flag token" scan let the value
     of an option like [--trials 200] hijack the artifact path; only a
     token that names a JSON file can be the destination. *)
  let is_json s =
    String.length s > 5
    && s.[0] <> '-'
    && String.equal (String.sub s (String.length s - 5) 5) ".json"
  in
  let rec scan i =
    if i >= Array.length Sys.argv then default
    else if is_json Sys.argv.(i) then Sys.argv.(i)
    else scan (i + 1)
  in
  scan 1

let quota ~default =
  (* Same env knob as the bechamel grid: MINEQ_BENCH_QUOTA=<seconds>
     scales the handwritten benches' budgets too. *)
  match Option.bind (Sys.getenv_opt "MINEQ_BENCH_QUOTA") float_of_string_opt with
  | Some q when q > 0.0 -> q
  | _ -> default

let scaled_reps ~reps =
  if smoke_requested () then 1
  else
    let q = quota ~default:0.5 in
    if q >= 0.5 then reps
    else max 1 (int_of_float (float_of_int reps *. q /. 0.5))

let time_us ~reps f =
  (* Best of three batches, to damp scheduler noise. *)
  let batch () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Sys.opaque_identity (f ()))
    done;
    let t1 = Unix.gettimeofday () in
    (t1 -. t0) *. 1e6 /. float_of_int reps
  in
  let m1 = batch () in
  let m2 = batch () in
  let m3 = batch () in
  List.fold_left min m1 [ m2; m3 ]

let time_ms f =
  (* Best of three single runs, keeping the first run's result. *)
  let once () =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let t1 = Unix.gettimeofday () in
    (r, (t1 -. t0) *. 1e3)
  in
  let r1, m1 = once () in
  let _, m2 = once () in
  let _, m3 = once () in
  (r1, List.fold_left min m1 [ m2; m3 ])

let minor_words_per_op ~reps f =
  (* One warmup call so lazy one-time setup (e.g. packing a network)
     is not billed to the per-op figure. *)
  ignore (Sys.opaque_identity (f ()));
  let before = Gc.minor_words () in
  for _ = 1 to reps do
    ignore (Sys.opaque_identity (f ()))
  done;
  let after = Gc.minor_words () in
  (after -. before) /. float_of_int reps
