(* Command-line interface to the mineq library.

   Network specifications accepted everywhere a NETWORK argument
   appears: one of the six classical names (omega, flip, cube /
   indirect-binary-cube, mdm / modified-data-manipulator, baseline,
   reverse-baseline), or "random:SEED" (random link permutations),
   "pipid:SEED" (random PIPID stages), "buddy:SEED" (random stages
   with the buddy properties). *)

open Cmdliner
open Mineq
module Engine = Mineq_engine
module Route = Mineq_route

let parse_network spec ~n =
  match Classical.of_name spec with
  | Some kind -> Ok (Classical.network kind ~n)
  | None -> (
      match String.split_on_char ':' spec with
      | [ "random"; seed ] -> (
          match int_of_string_opt seed with
          | Some s -> Ok (Link_spec.random_network (Engine.Seeds.state s) ~n)
          | None -> Error (`Msg "random:SEED needs an integer seed"))
      | [ "pipid"; seed ] -> (
          match int_of_string_opt seed with
          | Some s -> Ok (Link_spec.random_pipid_network (Engine.Seeds.state s) ~n)
          | None -> Error (`Msg "pipid:SEED needs an integer seed"))
      | [ "buddy"; seed ] -> (
          match int_of_string_opt seed with
          | Some s -> Ok (Counterexample.random_buddy_network (Engine.Seeds.state s) ~n)
          | None -> Error (`Msg "buddy:SEED needs an integer seed"))
      | _ ->
          Error
            (`Msg
              (Printf.sprintf
                 "unknown network %S (expected a classical name, random:SEED, pipid:SEED or \
                  buddy:SEED)"
                 spec)))

let network_arg =
  let doc = "Network: classical name, random:SEED, pipid:SEED or buddy:SEED." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"NETWORK" ~doc)

let n_arg =
  let doc = "Number of stages (log2 of the terminal count)." in
  Arg.(value & opt int 4 & info [ "n"; "stages" ] ~docv:"N" ~doc)

let jobs_arg =
  (* Defaults to every available core and rejects non-positive values
     here, so Pool.create's jobs >= 1 contract holds for any parse. *)
  let jobs_conv =
    let parse s =
      match int_of_string_opt s with
      | Some j when j >= 1 -> Ok j
      | Some _ -> Error (`Msg "JOBS must be >= 1")
      | None -> Error (`Msg "JOBS must be an integer")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  let doc =
    "Parallel width of the batch sections (1 = run sequentially inline).  Defaults to \
     the recommended domain count of the machine; larger values are clamped to it."
  in
  Arg.(
    value
    & opt jobs_conv (Engine.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let seed_arg =
  let doc = "Root RNG seed; all task-level randomness is derived from it." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let with_network spec n f =
  match parse_network spec ~n with
  | Error (`Msg m) ->
      prerr_endline m;
      1
  | Ok g ->
      f g;
      0

(* build ------------------------------------------------------------- *)

let build_cmd =
  let run spec n =
    with_network spec n (fun g -> print_string (Render.network_summary g))
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Build a network and print its structural summary")
    Term.(const run $ network_arg $ n_arg)

(* render ------------------------------------------------------------ *)

let render_cmd =
  let format_arg =
    let doc = "Output format: table, matrix or wiring." in
    Arg.(value & opt (enum [ ("table", `Table); ("matrix", `Matrix); ("wiring", `Wiring) ]) `Table
         & info [ "format"; "f" ] ~docv:"FORMAT" ~doc)
  in
  let run spec n format =
    with_network spec n (fun g ->
        match format with
        | `Table -> print_string (Render.stage_table g)
        | `Wiring -> print_string (Render.wiring_diagram g)
        | `Matrix ->
            for i = 1 to Mi_digraph.stages g - 1 do
              print_string (Render.gap_matrix g i)
            done)
  in
  Cmd.v
    (Cmd.info "render" ~doc:"Render a network as ASCII (Figure-1 style)")
    Term.(const run $ network_arg $ n_arg $ format_arg)

(* check ------------------------------------------------------------- *)

let check_cmd =
  let run spec n =
    with_network spec n (fun g ->
        let yes b = if b then "yes" else "no" in
        Printf.printf "banyan:            %s\n" (yes (Banyan.is_banyan g));
        Printf.printf "P(1,j) for all j:  %s\n" (yes (Properties.p_one_star g));
        Printf.printf "P(i,n) for all i:  %s\n" (yes (Properties.p_star_n g));
        Printf.printf "buddy properties:  %s\n" (yes (Properties.has_buddy_property g));
        Printf.printf "all independent:   %s\n"
          (yes (List.for_all Connection.is_independent (Mi_digraph.connections g)));
        Printf.printf "delta:             %s\n" (yes (Routing.is_delta g));
        Printf.printf "bidelta:           %s\n" (yes (Routing.is_bidelta g)))
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Run every structural property check on a network")
    Term.(const run $ network_arg $ n_arg)

(* equiv ------------------------------------------------------------- *)

let method_arg =
  let doc = "Decider: independence, characterization or isomorphism." in
  Arg.(
    value
    & opt
        (enum
           [ ("independence", Equivalence.Independence);
             ("characterization", Equivalence.Characterization);
             ("isomorphism", Equivalence.Isomorphism)
           ])
        Equivalence.Characterization
    & info [ "method"; "m" ] ~docv:"METHOD" ~doc)

let equiv_cmd =
  let run spec n m =
    with_network spec n (fun g ->
        let v = Equivalence.decide m g in
        Printf.printf "method:     %s\n" (Equivalence.method_name m);
        Printf.printf "equivalent: %b\n" v.equivalent;
        Printf.printf "banyan:     %b\n" v.banyan;
        Printf.printf "detail:     %s\n" v.detail)
  in
  Cmd.v
    (Cmd.info "equiv" ~doc:"Decide Baseline-equivalence of a network")
    Term.(const run $ network_arg $ n_arg $ method_arg)

(* iso ---------------------------------------------------------------- *)

let iso_cmd =
  let network2_arg =
    let doc = "Second network." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NETWORK2" ~doc)
  in
  let run spec1 spec2 n =
    match (parse_network spec1 ~n, parse_network spec2 ~n) with
    | Ok g, Ok h -> (
        match Iso_min.find g h with
        | None ->
            print_endline "not isomorphic";
            1
        | Some m ->
            Printf.printf "isomorphic; per-stage label mapping (verified: %b):\n"
              (Iso_min.verify g h m);
            Array.iteri
              (fun s stage_map ->
                Printf.printf "stage %d: " (s + 1);
                Array.iteri (fun x y -> Printf.printf "%d->%d " x y) stage_map;
                print_newline ())
              m;
            0)
    | Error (`Msg m), _ | _, Error (`Msg m) ->
        prerr_endline m;
        1
  in
  Cmd.v
    (Cmd.info "iso" ~doc:"Find an explicit isomorphism between two networks")
    Term.(const run $ network_arg $ network2_arg $ n_arg)

(* route -------------------------------------------------------------- *)

(* Argument specifications for route --perm / --churn: malformed
   values are rejected with a structured MINEQ-R2xx finding (never a
   raw exception, never silent truncation); the CLI maps those to
   exit code 2, like spec parse errors. *)
let route_finding ~code ~message ?witness ~hint () =
  { Mineq_analysis.Diagnostics.code;
    severity = Mineq_analysis.Diagnostics.Error;
    stage = None;
    message;
    witness;
    hint = Some hint
  }

let perm_hint = "PERM is identity, bitrev, random:SEED or a comma-separated image"

let perm_finding ~code ~message ?witness () =
  route_finding ~code ~message ?witness ~hint:perm_hint ()

(* Seed fields ("random:SEED", "OPS:SEED") get dedicated findings for
   the two spellings that look deceptively valid: the empty seed
   (trailing colon) and the all-digits seed too large for a native
   int, which int_of_string would lump in with "abc". *)
let all_digits s =
  let body =
    if String.length s > 0 && (s.[0] = '-' || s.[0] = '+') then
      String.sub s 1 (String.length s - 1)
    else s
  in
  String.length body > 0 && String.for_all (fun c -> c >= '0' && c <= '9') body

let parse_seed ~what ~hint s =
  if String.length s = 0 then
    Error (route_finding ~code:"MINEQ-R206" ~message:(what ^ " has an empty seed") ~hint ())
  else
    match int_of_string_opt s with
    | Some v -> Ok v
    | None when all_digits s ->
        Error
          (route_finding ~code:"MINEQ-R207"
             ~message:(what ^ " seed overflows the native integer range")
             ~witness:(Printf.sprintf "seed %S" s)
             ~hint ())
    | None ->
        Error
          (route_finding ~code:"MINEQ-R205"
             ~message:(what ^ " needs an integer seed")
             ~witness:(Printf.sprintf "seed %S" s)
             ~hint ())

let parse_perm spec ~terminals =
  let bits =
    let rec go b = if 1 lsl b >= terminals then b else go (b + 1) in
    go 0
  in
  match spec with
  | "identity" -> Ok (Array.init terminals Fun.id)
  | "bitrev" ->
      Ok
        (Array.init terminals (fun i ->
             let r = ref 0 in
             for b = 0 to bits - 1 do
               if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
             done;
             !r))
  | _ -> (
      match String.split_on_char ':' spec with
      | [ "random"; seed ] -> (
          match parse_seed ~what:"random:SEED" ~hint:perm_hint seed with
          | Error f -> Error f
          | Ok s ->
              let st = Engine.Seeds.state s in
              let img = Array.init terminals Fun.id in
              for i = terminals - 1 downto 1 do
                let j = Random.State.int st (i + 1) in
                let tmp = img.(i) in
                img.(i) <- img.(j);
                img.(j) <- tmp
              done;
              Ok img)
      | _ -> (
          let parts = String.split_on_char ',' spec in
          match
            List.find_opt (fun p -> Option.is_none (int_of_string_opt p)) parts
          with
          | Some bad ->
              Error
                (perm_finding ~code:"MINEQ-R201"
                   ~message:"permutation image has a non-integer entry"
                   ~witness:(Printf.sprintf "entry %S" bad)
                   ())
          | None ->
              let img = Array.of_list (List.filter_map int_of_string_opt parts) in
              if Array.length img <> terminals then
                Error
                  (perm_finding ~code:"MINEQ-R202"
                     ~message:"permutation image has the wrong length"
                     ~witness:
                       (Printf.sprintf "%d entries, network has %d terminals"
                          (Array.length img) terminals)
                     ())
              else begin
                let seen = Array.make terminals (-1) in
                let problem = ref None in
                Array.iteri
                  (fun i v ->
                    if !problem = None then
                      if v < 0 || v >= terminals then
                        problem :=
                          Some
                            (perm_finding ~code:"MINEQ-R203"
                               ~message:"permutation image entry is out of range"
                               ~witness:
                                 (Printf.sprintf "image(%d) = %d, valid range 0..%d" i v
                                    (terminals - 1))
                               ())
                      else if seen.(v) >= 0 then
                        problem :=
                          Some
                            (perm_finding ~code:"MINEQ-R204"
                               ~message:"permutation image repeats an output"
                               ~witness:
                                 (Printf.sprintf "output %d claimed by inputs %d and %d" v
                                    seen.(v) i)
                               ())
                      else seen.(v) <- i)
                  img;
                match !problem with Some f -> Error f | None -> Ok img
              end))

let print_finding_stderr (f : Mineq_analysis.Diagnostics.finding) =
  Printf.eprintf "%s %s\n  %s\n"
    (Mineq_analysis.Diagnostics.severity_name f.severity |> String.uppercase_ascii)
    f.code f.message;
  Option.iter (Printf.eprintf "  witness: %s\n") f.witness;
  Option.iter (Printf.eprintf "  hint: %s\n") f.hint

(* Per-stage switch states: one group of radix digits per cell, the
   digit at position j being the out-port assigned to in-port j ('.'
   when unset). *)
let print_plan plan =
  let fab = Route.Plan.fabric plan in
  let r = fab.Route.Fabric.radix in
  let buf = Buffer.create 256 in
  for s = 0 to fab.Route.Fabric.stages - 1 do
    Buffer.clear buf;
    Buffer.add_string buf (Printf.sprintf "stage %2d: " (s + 1));
    for c = 0 to fab.Route.Fabric.per - 1 do
      if c > 0 then Buffer.add_char buf ' ';
      for j = 0 to r - 1 do
        let p = Route.Plan.port_of plan ~stage:s ~cell:c ~in_port:j in
        Buffer.add_char buf (if p < 0 then '.' else Char.chr (Char.code '0' + p))
      done
    done;
    print_endline (Buffer.contents buf)
  done

let route_pair_run spec n src dst =
  with_network spec n (fun g ->
      match Routing.route g ~input:src ~output:dst with
      | None -> Printf.printf "no path from %d to %d\n" src dst
      | Some p ->
          Printf.printf "cells: %s\n"
            (String.concat " -> "
               (Array.to_list (Array.map string_of_int p.Routing.cells)));
          Printf.printf "ports: %s\n"
            (String.concat ""
               (Array.to_list (Array.map string_of_int p.Routing.ports)));
          Printf.printf "port word: %d\n" (Routing.port_word p))

let route_benes_perm n img =
  let router = Route.Loop.create n in
  let plan = Route.Loop.plan router in
  Route.Loop.route router plan img;
  let terminals = Route.Loop.terminals router in
  Printf.printf "benes n=%d: %d terminals, %d stages, %d switch assignments\n" n terminals
    ((2 * n) - 1)
    (Route.Plan.set_count plan);
  Printf.printf "plan realizes the permutation: %b\n" (Route.Plan.realizes plan img);
  if terminals <= 32 then print_plan plan;
  0

let route_perm_run spec n pspec planes =
  let terminals = 1 lsl n in
  match parse_perm pspec ~terminals with
  | Error f ->
      print_finding_stderr f;
      2
  | Ok img ->
      if String.equal spec "benes" then route_benes_perm n img
      else
        with_network spec n (fun g ->
            match Route.Bit_follow.of_network g with
            | None ->
                Printf.printf "%s is not a delta network: no destination-tag control\n" spec
            | Some router ->
                let ens = Route.Planes.create router ~planes in
                let routed = Route.Planes.connect_all ens img in
                Printf.printf "routed %d/%d pairs through %d plane(s)\n" routed terminals
                  planes;
                Array.iteri
                  (fun input output ->
                    if Route.Planes.plane_of ens input < 0 then
                      match Route.Planes.connect ens ~input ~output with
                      | Ok _ -> ()
                      | Error b ->
                          Printf.printf
                            "blocked: %d -> %d contests stage %d cell %d port %d\n" input
                            output (b.Route.Bit_follow.stage + 1) b.Route.Bit_follow.cell
                            b.Route.Bit_follow.port)
                  img;
                if terminals <= 32 then
                  for k = 0 to Route.Planes.plane_count ens - 1 do
                    Printf.printf "plane %d:\n" k;
                    print_plan (Route.Planes.plan ens k)
                  done)

(* --churn OPS[:SEED]: OPS random toggle operations per trial on an
   incremental Rearrange engine, optionally under an explicit seed. *)
let churn_hint = "CHURN is OPS or OPS:SEED, e.g. --churn 10000:7"

let parse_churn spec =
  let ops_of s =
    if String.length s = 0 then
      Error
        (route_finding ~code:"MINEQ-R208" ~message:"--churn needs an operation count"
           ~hint:churn_hint ())
    else
      match int_of_string_opt s with
      | Some v when v >= 1 -> Ok v
      | Some v ->
          Error
            (route_finding ~code:"MINEQ-R208"
               ~message:"--churn operation count must be at least 1"
               ~witness:(Printf.sprintf "ops %d" v) ~hint:churn_hint ())
      | None when all_digits s ->
          Error
            (route_finding ~code:"MINEQ-R207"
               ~message:"--churn operation count overflows the native integer range"
               ~witness:(Printf.sprintf "ops %S" s) ~hint:churn_hint ())
      | None ->
          Error
            (route_finding ~code:"MINEQ-R208"
               ~message:"--churn operation count is not an integer"
               ~witness:(Printf.sprintf "ops %S" s) ~hint:churn_hint ())
  in
  match String.index_opt spec ':' with
  | None -> Result.map (fun ops -> (ops, 1)) (ops_of spec)
  | Some i -> (
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      match ops_of (String.sub spec 0 i) with
      | Error f -> Error f
      | Ok ops ->
          Result.map (fun s -> (ops, s)) (parse_seed ~what:"OPS:SEED" ~hint:churn_hint rest))

let route_churn_run spec n cspec trials jobs =
  match parse_churn cspec with
  | Error f ->
      print_finding_stderr f;
      2
  | Ok (ops, seed) ->
      if not (String.equal spec "benes") then begin
        print_finding_stderr
          (route_finding ~code:"MINEQ-R209"
             ~message:"--churn needs the rearrangeable benes fabric"
             ~witness:(Printf.sprintf "network %S" spec)
             ~hint:"run as: mineq route benes --churn OPS[:SEED]" ());
        2
      end
      else begin
        let row = Route.Survey.churn ~jobs ~seed ~n ~ops ~trials () in
        Printf.printf "churn benes n=%d: %d ops x %d trial(s), seed %d\n" n ops trials seed;
        Printf.printf "connects %d  disconnects %d  rearranged %.1f%% of connects\n"
          row.Route.Survey.connects row.Route.Survey.disconnects
          (100.0 *. Route.Survey.rearranged_fraction row);
        Printf.printf "connections moved per connect: %.3f mean\n"
          (Route.Survey.moved_per_connect row);
        print_string "moved histogram:";
        Array.iteri
          (fun k c ->
            if c > 0 then
              if k = Array.length row.Route.Survey.moved_hist - 1 then
                Printf.printf " %d+:%d" k c
              else Printf.printf " %d:%d" k c)
          row.Route.Survey.moved_hist;
        print_newline ();
        Printf.printf "end-of-trial consistency failures: %d\n" row.Route.Survey.failures;
        if row.Route.Survey.failures > 0 then 1 else 0
      end

let route_cmd =
  let src_arg =
    Arg.(
      value & opt (some int) None & info [ "s"; "source" ] ~docv:"INPUT" ~doc:"Input terminal.")
  in
  let dst_arg =
    Arg.(
      value & opt (some int) None & info [ "d"; "dest" ] ~docv:"OUTPUT" ~doc:"Output terminal.")
  in
  let perm_arg =
    let doc =
      "Route a whole permutation instead of one pair: identity, bitrev, random:SEED or a \
       comma-separated image.  With NETWORK benes the looping algorithm compiles the full \
       switch-state program (never blocks); on any delta network, destination-tag setup \
       through --planes parallel planes."
    in
    Arg.(value & opt (some string) None & info [ "perm" ] ~docv:"PERM" ~doc)
  in
  let planes_arg =
    Arg.(
      value & opt int 1
      & info [ "planes" ] ~docv:"K" ~doc:"Parallel expansion planes for --perm routing.")
  in
  let churn_arg =
    let doc =
      "Connection-churn throughput model (NETWORK must be benes): per trial, drive a \
       fresh incremental rearrangement engine through OPS random operations — toggle a \
       uniform input, disconnecting it if live and otherwise connecting it to a uniform \
       free output — and report how many existing connections each insertion had to \
       re-route.  SEED defaults to 1; trials come from --trials and run in parallel \
       under --jobs (results are jobs-invariant)."
    in
    Arg.(value & opt (some string) None & info [ "churn" ] ~docv:"OPS[:SEED]" ~doc)
  in
  let trials_arg =
    Arg.(
      value & opt int 4 & info [ "trials" ] ~docv:"T" ~doc:"Independent --churn trials.")
  in
  let run spec n src dst perm planes churn trials jobs =
    match (churn, perm, src, dst) with
    | Some cspec, None, None, None -> route_churn_run spec n cspec trials jobs
    | None, Some pspec, None, None -> route_perm_run spec n pspec planes
    | None, None, Some src, Some dst -> route_pair_run spec n src dst
    | _ ->
        prerr_endline "route needs either --source and --dest, or --perm, or --churn";
        1
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Route one input/output pair, a whole permutation, or a churn workload through \
          a network")
    Term.(
      const run $ network_arg $ n_arg $ src_arg $ dst_arg $ perm_arg $ planes_arg
      $ churn_arg $ trials_arg $ jobs_arg)

(* blocking ----------------------------------------------------------- *)

let blocking_cmd =
  let planes_arg =
    Arg.(
      value & opt int 1
      & info [ "planes"; "k" ] ~docv:"K" ~doc:"Parallel expansion planes per network.")
  in
  let trials_arg =
    Arg.(
      value & opt int 200
      & info [ "trials" ] ~docv:"T" ~doc:"Random permutations per network.")
  in
  let classes_arg =
    let doc =
      "Skip the Monte-Carlo survey and decide the classical affine traffic classes \
       symbolically: per network, a blocking-free certificate or a minimal blocked pair \
       (Mineq_route_verify.Certify)."
    in
    Arg.(value & flag & info [ "classes" ] ~doc)
  in
  let run_classes n =
    let module V = Mineq_route_verify in
    Printf.printf "%-26s %-16s %s\n" "network" "class" "verdict";
    List.iter
      (fun (name, g) ->
        match Route.Bit_follow.of_network g with
        | None -> Printf.printf "%-26s %-16s not a delta network\n" name "-"
        | Some router ->
            List.iter
              (fun ((tr : V.Certify.traffic), result) ->
                Printf.printf "%-26s %-16s %s\n" name tr.V.Certify.name
                  (Format.asprintf "%a" V.Certify.pp_result result))
              (V.Certify.survey_classes router))
      (Classical.all_networks ~n);
    0
  in
  let run n planes trials seed jobs classes =
    if classes then run_classes n
    else begin
      let rows = Route.Survey.run ~jobs ~seed ~n ~planes ~trials () in
      Printf.printf "%-26s %8s %10s %12s\n" "network" "planes" "perm-ok" "pairs-ok";
      List.iter
        (fun r ->
          Printf.printf "%-26s %8d %9.1f%% %11.1f%%\n" r.Route.Survey.name
            r.Route.Survey.planes
            (100.0 *. Route.Survey.full_fraction r)
            (100.0 *. Route.Survey.routed_fraction r))
        rows;
      0
    end
  in
  Cmd.v
    (Cmd.info "blocking"
       ~doc:
         "Blocking survey: random permutations through plane ensembles across the \
          classical inventory, or (--classes) symbolic certificates for the affine \
          traffic classes")
    Term.(const run $ n_arg $ planes_arg $ trials_arg $ seed_arg $ jobs_arg $ classes_arg)

(* simulate ----------------------------------------------------------- *)

let simulate_cmd =
  let rate_arg =
    Arg.(value & opt float 0.5 & info [ "rate" ] ~docv:"RATE" ~doc:"Injection rate per terminal.")
  in
  let cycles_arg =
    Arg.(value & opt int 1000 & info [ "cycles" ] ~docv:"CYCLES" ~doc:"Measured cycles.")
  in
  let pattern_arg =
    let doc = "Traffic pattern: uniform, bit-reversal or transpose." in
    Arg.(
      value
      & opt (enum [ ("uniform", `Uniform); ("bit-reversal", `Bitrev); ("transpose", `Transpose) ])
          `Uniform
      & info [ "pattern" ] ~docv:"PATTERN" ~doc)
  in
  let reps_arg =
    let doc = "Independent replications; more than one reports mean +/- 95% CI." in
    Arg.(value & opt int 1 & info [ "reps" ] ~docv:"REPS" ~doc)
  in
  let run spec n rate cycles seed pattern reps jobs =
    with_network spec n (fun g ->
        let pattern =
          match pattern with
          | `Uniform -> Mineq_sim.Traffic.uniform
          | `Bitrev -> Mineq_sim.Traffic.bit_reversal ~n
          | `Transpose -> Mineq_sim.Traffic.transpose ~n
        in
        let config =
          { Mineq_sim.Network_sim.default_config with injection_rate = rate; cycles; pattern }
        in
        Printf.printf "pattern:        %s\n" (Mineq_sim.Traffic.name pattern);
        if reps <= 1 then begin
          let s = Mineq_sim.Network_sim.run ~config (Engine.Seeds.state seed) g in
          Printf.printf "offered:        %d\n" s.offered;
          Printf.printf "injected:       %d\n" s.injected;
          Printf.printf "delivered:      %d\n" s.delivered;
          Printf.printf "refused:        %d\n" s.refused;
          Printf.printf "dropped:        %d\n" s.dropped;
          Printf.printf "throughput:     %.4f pkts/terminal/cycle\n"
            (Mineq_sim.Network_sim.throughput s);
          Printf.printf "mean latency:   %.2f cycles\n" (Mineq_sim.Network_sim.mean_latency s);
          Printf.printf "max latency:    %d cycles\n" s.latency_max
        end
        else begin
          let stats =
            Engine.Batch.simulate_runs ~jobs ~root:seed ~config ~replications:reps g
          in
          let summary f = Mineq_sim.Summary.of_samples (List.map f stats) in
          let pp = Format.asprintf "%a" Mineq_sim.Summary.pp in
          Printf.printf "replications:   %d (jobs %d)\n" reps jobs;
          Printf.printf "throughput:     %s pkts/terminal/cycle\n"
            (pp (summary Mineq_sim.Network_sim.throughput));
          Printf.printf "mean latency:   %s cycles\n"
            (pp (summary Mineq_sim.Network_sim.mean_latency));
          Printf.printf "max latency:    %d cycles\n"
            (List.fold_left (fun acc s -> max acc s.Mineq_sim.Network_sim.latency_max) 0 stats)
        end)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Packet-level simulation of a network")
    Term.(
      const run $ network_arg $ n_arg $ rate_arg $ cycles_arg $ seed_arg $ pattern_arg
      $ reps_arg $ jobs_arg)

(* survey -------------------------------------------------------------- *)

let survey_cmd =
  let run n jobs =
    let rows = Engine.Batch.survey ~jobs ~n in
    Printf.printf "%-26s %-7s %-7s %-7s %-7s\n" "network" "banyan" "indep" "P-char" "delta";
    List.iter
      (fun r ->
        Printf.printf "%-26s %-7b %-7b %-7b %-7b\n" r.Engine.Batch.name r.banyan r.independent
          r.characterization r.delta)
      rows;
    0
  in
  Cmd.v
    (Cmd.info "survey" ~doc:"Property survey of the six classical networks")
    Term.(const run $ n_arg $ jobs_arg)

(* census -------------------------------------------------------------- *)

let census_cmd =
  let samples_arg =
    Arg.(value & opt int 150 & info [ "samples" ] ~docv:"K" ~doc:"Random Banyans to draw.")
  in
  let attempts_arg =
    Arg.(
      value & opt int 400
      & info [ "attempts" ] ~docv:"A" ~doc:"Rejection attempts per Banyan draw.")
  in
  let stream_arg =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:
            "Streaming fingerprint-bucketed census: generate $(b,--specs) networks from \
             $(b,--generator) in bounded-memory chunks, bucket by canonical fingerprint and \
             run the isomorphism search only within colliding buckets.  Counts are invariant \
             under $(b,--jobs).")
  in
  let specs_arg =
    Arg.(
      value & opt int 2000
      & info [ "specs" ] ~docv:"K" ~doc:"Specs to stream (with $(b,--stream)).")
  in
  let generator_arg =
    Arg.(
      value & opt string "pipid"
      & info [ "generator" ] ~docv:"GEN"
          ~doc:"Spec generator for $(b,--stream): $(b,random), $(b,pipid) or $(b,affine).")
  in
  let run n samples attempts seed jobs stream specs generator =
    if stream then begin
      match Engine.Stream_census.generator_of_string generator with
      | None ->
          Printf.eprintf "unknown generator %S (expected random, pipid or affine)\n" generator;
          2
      | Some gen ->
          let s = Engine.Stream_census.run ~jobs ~root:seed ~n ~specs ~generator:gen in
          Printf.printf "streamed %d %s specs at n=%d: %d isomorphism classes in %d \
                         fingerprint buckets (%d collisions)\n"
            s.Engine.Stream_census.specs
            (Engine.Stream_census.generator_name s.Engine.Stream_census.generator)
            s.Engine.Stream_census.n
            (List.length s.Engine.Stream_census.classes)
            s.Engine.Stream_census.buckets s.Engine.Stream_census.collisions;
          List.iteri
            (fun i (c : Engine.Stream_census.class_row) ->
              Printf.printf "  class %d: %6d members  first=%-6d%s\n" (i + 1) c.count
                c.first_index
                (if c.baseline then "  <- the Baseline class" else ""))
            s.Engine.Stream_census.classes;
          Printf.printf "baseline class present: %b\n"
            (List.exists
               (fun (c : Engine.Stream_census.class_row) -> c.baseline)
               s.Engine.Stream_census.classes);
          0
    end
    else begin
      let classes =
        Engine.Batch.sample_census ~jobs ~root:seed ~n ~samples ~attempts
      in
      let total = List.fold_left (fun acc c -> acc + List.length c.Census.members) 0 classes in
      Printf.printf "%d random Banyans at n=%d fall into %d isomorphism classes:\n" total n
        (List.length classes);
      List.iteri
        (fun i cls ->
          Printf.printf "  class %d: %3d members  buddy=%-5b delta=%-5b%s\n" (i + 1)
            (List.length cls.Census.members)
            (Properties.has_buddy_property cls.Census.representative)
            (Routing.is_delta cls.Census.representative)
            (if Census.contains_baseline cls then "  <- the Baseline class" else ""))
        classes;
      Printf.printf "baseline class present: %b\n"
        (List.exists Census.contains_baseline classes);
      0
    end
  in
  Cmd.v
    (Cmd.info "census"
       ~doc:
         "Sample random Banyan networks and count their isomorphism classes (the X15 \
          experiment as a command); with $(b,--stream), a fingerprint-bucketed streaming \
          census over random/PIPID/affine generators")
    Term.(
      const run $ n_arg $ samples_arg $ attempts_arg $ seed_arg $ jobs_arg $ stream_arg
      $ specs_arg $ generator_arg)

(* benes --------------------------------------------------------------- *)

let benes_cmd =
  let samples_arg =
    Arg.(value & opt int 50 & info [ "samples" ] ~docv:"K" ~doc:"Random permutations to route.")
  in
  let run n seed samples =
    let net = Benes.network n in
    Printf.printf "Benes B(%d): %d stages of %d cells\n" n (Cascade.stages net)
      (Cascade.cells_per_stage net);
    Printf.printf "path diversity: %d\n" (Cascade.path_counts net).(0).(0);
    Printf.printf "%d random permutations routed link-disjoint: %b\n" samples
      (Benes.rearrangeable_check (Engine.Seeds.state seed) ~n ~samples);
    Printf.printf "single-fault tolerant: %b\n" (Faults.is_single_fault_tolerant net);
    0
  in
  Cmd.v
    (Cmd.info "benes" ~doc:"Build the Benes network and demonstrate rearrangeability")
    Term.(const run $ n_arg $ seed_arg $ samples_arg)

(* faults -------------------------------------------------------------- *)

let faults_cmd =
  let sweep_arg =
    let doc =
      "Comma-separated fault counts for a Monte-Carlo survival sweep (e.g. 1,2,4,8); \
       empty skips the sweep."
    in
    Arg.(value & opt (list int) [] & info [ "sweep" ] ~docv:"K1,K2,.." ~doc)
  in
  let samples_arg =
    Arg.(
      value & opt int 400
      & info [ "samples" ] ~docv:"S" ~doc:"Monte-Carlo samples per fault count.")
  in
  let run spec n sweep samples seed jobs =
    with_network spec n (fun g ->
        let c = Cascade.of_mi_digraph g in
        let links = (Cascade.stages c - 1) * Cascade.cells_per_stage c * 2 in
        Printf.printf "links:                  %d\n" links;
        Printf.printf "critical link faults:   %d\n" (Faults.critical_fault_count c);
        Printf.printf "single-fault tolerant:  %b\n" (Faults.is_single_fault_tolerant c);
        List.iteri
          (fun k (f, i) ->
            if k < 8 then
              Format.printf "  %a: %d disconnected, %d degraded@." Faults.pp_fault f
                i.Faults.disconnected_pairs i.Faults.degraded_pairs)
          (Faults.single_link_impacts c);
        if sweep <> [] then begin
          Printf.printf "survival under k random link faults (%d samples, seed %d):\n" samples
            seed;
          List.iter
            (fun (k, p) -> Printf.printf "  k=%-3d survival=%.3f\n" k p)
            (Engine.Batch.fault_survival ~jobs ~root:seed c ~faults:sweep ~samples)
        end)
  in
  Cmd.v
    (Cmd.info "faults" ~doc:"Single-link fault sweep of a network")
    Term.(const run $ network_arg $ n_arg $ sweep_arg $ samples_arg $ seed_arg $ jobs_arg)

(* perms --------------------------------------------------------------- *)

let perms_cmd =
  let samples_arg =
    Arg.(
      value & opt int 0
      & info [ "samples" ] ~docv:"K"
          ~doc:"Estimate with K random settings instead of exact enumeration.")
  in
  let run spec n samples seed =
    with_network spec n (fun g ->
        if samples > 0 then
          Printf.printf "distinct permutations over %d random settings: %d\n" samples
            (Realizable.estimate (Engine.Seeds.state seed) g ~samples)
        else begin
          let switches = Mi_digraph.stages g * Mi_digraph.nodes_per_stage g in
          Printf.printf "distinct permutations over all 2^%d settings: %d\n" switches
            (Realizable.count_exact g)
        end)
  in
  Cmd.v
    (Cmd.info "perms" ~doc:"Count one-pass realizable permutations")
    Term.(const run $ network_arg $ n_arg $ samples_arg $ seed_arg)

(* save / load / dot ---------------------------------------------------- *)

let file_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE" ~doc:"Spec file path.")

let save_cmd =
  let run spec n file =
    with_network spec n (fun g ->
        Spec_io.save file g;
        Printf.printf "wrote %s\n" file)
  in
  Cmd.v
    (Cmd.info "save" ~doc:"Serialize a network to a spec file")
    Term.(const run $ network_arg $ n_arg $ file_arg)

let load_cmd =
  let path_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Spec file path.")
  in
  let run file =
    match Spec_io.load file with
    | Ok g ->
        print_string (Render.network_summary g);
        0
    | Error e ->
        prerr_endline (Spec_io.error_to_string e);
        1
  in
  Cmd.v
    (Cmd.info "load" ~doc:"Load a spec file and print its structural summary")
    Term.(const run $ path_arg)

let dot_cmd =
  let run spec n = with_network spec n (fun g -> print_string (Render.to_dot g)) in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit a Graphviz drawing of a network")
    Term.(const run $ network_arg $ n_arg)

(* lint --------------------------------------------------------------- *)

let lint_cmd =
  let module A = Mineq_analysis in
  let target_arg =
    let doc =
      "Spec file to lint, or (when no such file exists) a NETWORK specification as accepted \
       by the other subcommands."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE-or-NETWORK" ~doc)
  in
  let json_arg =
    let doc = "Emit the machine-readable JSON report instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let routes_arg =
    let doc =
      "Run the static routing verifier instead of the structural lint: CDG deadlock \
       analysis (forward and recirculating), affine blocking certificates and a \
       Plan_check-audited routing smoke test (MINEQ-R* findings)."
    in
    Arg.(value & flag & info [ "routes" ] ~doc)
  in
  let run target n json routes =
    let module RL = Mineq_route_verify.Route_lint in
    let print_report r =
      print_string (if json then A.Report.to_json r else A.Report.to_text r);
      A.Lint.exit_code r
    in
    let print_route_report r =
      print_string (if json then RL.to_json r else RL.to_text r);
      RL.exit_code r
    in
    let parse_error e =
      if json then print_string (A.Report.error_to_json e)
      else prerr_endline (Spec_io.error_to_string e);
      2
    in
    if Sys.file_exists target then
      if routes then
        match RL.lint_file target with
        | Ok r -> print_route_report r
        | Error e -> parse_error e
      else
        match A.Spec_lint.lint_file target with
        | Ok r -> print_report r
        | Error e -> parse_error e
    else
      match parse_network target ~n with
      | Ok g -> if routes then print_route_report (RL.run g) else print_report (A.Lint.run g)
      | Error (`Msg m) -> parse_error { Spec_io.line = None; reason = m }
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Analyze a spec file or network and report structured diagnostics (exit 0 clean, 1 \
          findings, 2 parse error); --routes runs the static routing verifier instead")
    Term.(const run $ target_arg $ n_arg $ json_arg $ routes_arg)

(* serve --------------------------------------------------------------- *)

(* The persistent equivalence/lint daemon (lib/serve): packed
   networks and the fingerprint-keyed verdict caches stay warm across
   requests, with optional disk snapshots so they survive restarts.
   The same subcommand doubles as the scripted client: --call sends
   one JSON request over the socket and prints the response — the
   building block of the serve-smoke CI job. *)

let serve_cmd =
  let module Serve = Mineq_serve in
  let socket_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path to listen (or call) on.")
  in
  let queue_arg =
    Arg.(
      value & opt int 256
      & info [ "queue-cap" ] ~docv:"Q"
          ~doc:
            "Bounded accept queue: requests beyond $(docv) pending are shed with \
             MINEQ-S005 instead of stalling.")
  in
  let batch_arg =
    Arg.(
      value & opt int 64
      & info [ "batch" ] ~docv:"B" ~doc:"Max requests per work-stealing pool dispatch.")
  in
  let deadline_arg =
    Arg.(
      value & opt float 2000.0
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Default per-request deadline; requests still queued past it are answered \
             with MINEQ-S004 unevaluated.  A request's own deadline_ms can only lower \
             it.")
  in
  let max_conns_arg =
    Arg.(
      value & opt int 512
      & info [ "max-conns" ] ~docv:"C"
          ~doc:
            "Concurrent-connection cap: past $(docv) new clients wait in the kernel \
             backlog until a slot frees.  Keep below the select(2) FD_SETSIZE (1024 on \
             Linux).")
  in
  let snapshot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Persist the verdict caches here: loaded on boot (stale or corrupt files \
             boot cold with a warning), written behind periodically and at shutdown.")
  in
  let every_arg =
    Arg.(
      value & opt float 5.0
      & info [ "snapshot-every" ] ~docv:"SECONDS" ~doc:"Write-behind snapshot period.")
  in
  let call_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "call" ] ~docv:"JSON"
          ~doc:
            "Client mode: send one request frame to a running daemon and print the \
             response.  Exit 0 on ok:true, 1 on a server error response, 2 on \
             transport or argument failure.")
  in
  let run_daemon socket jobs queue_cap batch_max deadline_ms max_conns snapshot_path
      every =
    let config =
      { (Serve.Server.default_config ~socket_path:socket) with
        jobs;
        queue_cap;
        batch_max;
        deadline_ms;
        max_conns;
        snapshot_path;
        snapshot_every_s = every
      }
    in
    let service = Serve.Service.create () in
    let on_ready () =
      Printf.printf "mineq serve: listening on %s (jobs %d, queue %d, deadline %.0f ms)\n%!"
        socket config.Serve.Server.jobs queue_cap deadline_ms
    in
    Serve.Server.run ~on_ready config service;
    0
  in
  let run_call socket text =
    match Serve.Proto.json_of_string text with
    | Error m ->
        Printf.eprintf "--call argument is not valid JSON: %s\n" m;
        2
    | Ok request -> (
        match Serve.Server.connect ~retries:40 ~path:socket () with
        | Error m ->
            prerr_endline m;
            2
        | Ok fd ->
            let result = Serve.Server.call fd request in
            (try Unix.close fd with Unix.Unix_error _ -> ());
            (match result with
            | Error m ->
                prerr_endline m;
                2
            | Ok response ->
                print_endline (Serve.Proto.json_to_string response);
                if Serve.Proto.response_ok response then 0 else 1))
  in
  let run socket jobs queue_cap batch_max deadline_ms max_conns snapshot every call =
    match call with
    | Some text -> run_call socket text
    | None ->
        run_daemon socket jobs queue_cap batch_max deadline_ms max_conns snapshot every
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Persistent equivalence/lint daemon over a Unix socket: length-prefixed JSON \
          requests against warm packed networks and snapshot-persisted verdict caches \
          (or, with --call, a one-shot client)")
    Term.(
      const run $ socket_arg $ jobs_arg $ queue_arg $ batch_arg $ deadline_arg
      $ max_conns_arg $ snapshot_arg $ every_arg $ call_arg)

(* rsurvey ------------------------------------------------------------- *)

let rsurvey_cmd =
  let radix_arg =
    Arg.(value & opt int 3 & info [ "radix"; "r" ] ~docv:"R" ~doc:"Cell size (r x r).")
  in
  let run radix n =
    let module Rn = Mineq_radix.Rnetwork in
    let base = Mineq_radix.Rbuild.baseline ~radix n in
    Printf.printf "%-26s %-7s %-12s %-14s %-7s\n" "network" "banyan" "independent"
      "P-properties" "delta";
    List.iter
      (fun (name, g) ->
        Printf.printf "%-26s %-7b %-12b %-14b %-7b\n" name (Rn.is_banyan g)
          (Rn.by_independence g) (Rn.by_characterization g)
          (Mineq_radix.Rrouting.is_delta g))
      (Mineq_radix.Rbuild.all_networks ~radix ~n);
    Printf.printf "all isomorphic to the radix-%d baseline: %b\n" radix
      (List.for_all
         (fun (_, g) -> Rn.isomorphic g base)
         (Mineq_radix.Rbuild.all_networks ~radix ~n));
    0
  in
  Cmd.v
    (Cmd.info "rsurvey" ~doc:"Property survey of the classical networks at radix r")
    Term.(const run $ radix_arg $ n_arg)

let main_cmd =
  let doc = "Baseline-equivalence toolkit for multistage interconnection networks" in
  let info = Cmd.info "mineq" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ build_cmd; render_cmd; check_cmd; equiv_cmd; iso_cmd; route_cmd; blocking_cmd;
      simulate_cmd; survey_cmd; census_cmd; rsurvey_cmd; benes_cmd; faults_cmd; perms_cmd;
      save_cmd; load_cmd; dot_cmd; lint_cmd; serve_cmd
    ]

let () = exit (Cmd.eval' main_cmd)
