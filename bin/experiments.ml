(* Regenerates every experiment in DESIGN.md's index and prints the
   paper-shaped result.  `experiments.exe` runs everything;
   `experiments.exe F1 T3 ...` runs a subset; `-j N` runs the
   sweep-shaped experiments (X9, X11, X15, X16) on N worker domains
   (results are bit-identical for every N).  EXPERIMENTS.md records
   this program's output. *)

module Perm = Mineq_perm.Perm
module Family = Mineq_perm.Pipid_family
module Ip = Mineq_perm.Index_perm
module Engine = Mineq_engine
open Mineq

let rng seed = Random.State.make [| seed; 0xe9; 0x88 |]

let jobs = ref (Mineq_engine.Pool.default_jobs ())

let header id title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s — %s\n" id title;
  Printf.printf "================================================================\n"

let result fmt = Printf.printf fmt

let bool_mark b = if b then "yes" else "NO"

(* F1: Figure 1 — the 4-stage Baseline network and its MI-digraph. *)
let f1 () =
  header "F1" "Figure 1: Baseline network and Baseline MI-digraph (n = 4)";
  let g = Baseline.network 4 in
  print_string (Render.stage_table g);
  result "recursive construction = Wu–Feng sub-shuffle stack: %s\n"
    (bool_mark (Mi_digraph.equal g (Classical.network Baseline_net ~n:4)));
  result "Banyan: %s   P(1,j) all j: %s   P(i,n) all i: %s\n"
    (bool_mark (Banyan.is_banyan g))
    (bool_mark (Properties.p_one_star g))
    (bool_mark (Properties.p_star_n g));
  print_string (Render.gap_matrix g 1)

(* F2: Figure 2 — labelling of an MI-digraph. *)
let f2 () =
  header "F2" "Figure 2: node labelling (width 3, one stage column)";
  print_string (Render.labels_figure ~width:3);
  result "labels are (x_{n-1},...,x_1) tuples; bitwise addition = xor\n"

(* F3: Figure 3 / Lemma 2 — component structure of suffix windows. *)
let f3 () =
  header "F3" "Figure 3 / Lemma 2: suffix-window components and translated buddy sets";
  let n = 4 in
  let g = Classical.network Omega ~n in
  for j = 2 to n do
    let profile = Properties.component_profile g ~lo:j ~hi:n in
    let count = Array.length profile.components in
    result "(G)_{%d..%d}: %d components (expected %d), stage slices of %d nodes each\n" j n
      count
      (Properties.expected_components g ~lo:j ~hi:n)
      (1 lsl (n - j))
  done;
  result "Lemma 2 invariant (B_j is a translated set of A_j, all windows): %s\n"
    (bool_mark (Properties.lemma2_translate_structure g))

(* F4: Figure 4 — link labels under a stage permutation. *)
let f4 () =
  header "F4" "Figure 4: link labels under the perfect shuffle (n = 4)";
  let n = 4 in
  let sigma = Family.perfect_shuffle ~width:n in
  let a = Ip.induce ~width:n sigma in
  result "cell x drives out-links 2x, 2x+1; after sigma, link z enters cell z/2\n";
  for x = 0 to (1 lsl (n - 1)) - 1 do
    let l0 = 2 * x and l1 = (2 * x) + 1 in
    result "cell %s: link %2d -> %2d (cell %s)   link %2d -> %2d (cell %s)\n"
      (Mineq_bitvec.Bv.to_bit_string ~width:(n - 1) x)
      l0 (Perm.apply a l0)
      (Mineq_bitvec.Bv.to_bit_string ~width:(n - 1) (Perm.apply a l0 / 2))
      l1 (Perm.apply a l1)
      (Mineq_bitvec.Bv.to_bit_string ~width:(n - 1) (Perm.apply a l1 / 2))
  done;
  let c1 = Pipid_net.connection ~n sigma in
  let c2 = Link_spec.connection_of_link_perm ~n a in
  result "closed-form Section-4 connection = link-permutation connection: %s\n"
    (bool_mark (Connection.equal_graph c1 c2))

(* F5: Figure 5 — a stage with theta^-1(0) = 0: double links. *)
let f5 () =
  header "F5" "Figure 5: degenerate stage (theta^-1(0) = 0) breaks the Banyan property";
  let n = 3 in
  let id_stage = Perm.identity n in
  result "theta = identity: degenerate = %s\n" (bool_mark (Pipid_net.is_degenerate ~n id_stage));
  let g = Link_spec.network_of_thetas ~n [ id_stage; Family.perfect_shuffle ~width:n ] in
  print_string (Render.gap_matrix g 1);
  (match Banyan.check g with
  | Ok () -> result "unexpected: network is Banyan\n"
  | Error v ->
      result "Banyan violated: source %d, sink %d, %d paths (expected 1)\n" v.source v.sink
        v.paths);
  result "still independent (independence does not require Banyan): %s\n"
    (bool_mark (Connection.is_independent (Mi_digraph.connection g 1)))

(* T1: the [12] characterization on the classical networks. *)
let t1 () =
  header "T1" "Characterization theorem: Banyan + P(1,j) + P(i,n) <=> Baseline-equivalent";
  List.iter
    (fun n ->
      result "n = %d:\n" n;
      List.iter
        (fun (name, g) ->
          result "  %-26s banyan=%-3s P(1,j)=%-3s P(i,n)=%-3s iso-ground-truth=%s\n" name
            (bool_mark (Banyan.is_banyan g))
            (bool_mark (Properties.p_one_star g))
            (bool_mark (Properties.p_star_n g))
            (if n <= 5 then bool_mark (Equivalence.by_isomorphism g).equivalent else "-"))
        (Classical.all_networks ~n))
    [ 3; 4; 5 ]

(* P1: Proposition 1 on random independent connections. *)
let p1 () =
  header "P1" "Proposition 1: the reverse of an independent connection is independent";
  let r = rng 11 in
  let case1 = ref 0 and case2 = ref 0 and ok = ref 0 and total = 200 in
  for _ = 1 to total do
    let width = 3 + Random.State.int r 6 in
    let c = Connection.random_independent r ~width in
    (match Connection.linear_form c with
    | Some (b, _, _) ->
        if Mineq_bitvec.Gf2_matrix.is_invertible b then incr case1 else incr case2
    | None -> ());
    match Connection.reverse_independent c with
    | Some rc when Connection.is_independent rc && Connection.is_mi_stage rc -> incr ok
    | _ -> ()
  done;
  result "%d/%d random independent connections (widths 3-8) reversed independently\n" !ok total;
  result "case split: %d invertible-B (f,g bijections), %d corank-1 (A/B subspace split)\n"
    !case1 !case2

(* L2: Lemma 2 on random Banyan PIPID stacks. *)
let l2 () =
  header "L2" "Lemma 2: Banyan + independent connections => P(i,n) for every i";
  let r = rng 12 in
  let total = 200 and ok = ref 0 and ok_dual = ref 0 in
  for _ = 1 to total do
    let n = 3 + Random.State.int r 4 in
    let rec banyan_pipid () =
      let g = Link_spec.random_pipid_network r ~n in
      if Banyan.is_banyan g then g else banyan_pipid ()
    in
    let g = banyan_pipid () in
    if Properties.p_star_n g then incr ok;
    if Properties.p_one_star g then incr ok_dual
  done;
  result "%d/%d random Banyan PIPID networks satisfy P(i,n) for all i\n" !ok total;
  result "%d/%d satisfy P(1,j) for all j (dual via Proposition 1)\n" !ok_dual total

(* T3: the main theorem, constructively. *)
let t3 () =
  header "T3" "Theorem 3: Banyan + independent => isomorphic to the Baseline (constructive)";
  let n = 5 in
  List.iter
    (fun (name, g) ->
      let vi = Equivalence.by_independence g in
      match Iso_min.to_baseline g with
      | Some m ->
          result "  %-26s independence-decider=%-3s explicit-iso-verified=%s\n" name
            (bool_mark vi.equivalent)
            (bool_mark (Iso_min.verify g (Baseline.network n) m))
      | None -> result "  %-26s NO ISOMORPHISM FOUND\n" name)
    (Classical.all_networks ~n)

(* S4: PIPID => independent connection, with the explicit witness. *)
let s4 () =
  header "S4" "Section 4: PIPID permutations induce independent connections";
  let n = 4 in
  List.iter
    (fun (name, theta) ->
      let c = Pipid_net.connection ~n theta in
      let slot =
        match Pipid_net.routing_bit_slot ~n theta with
        | Some s -> string_of_int s
        | None -> "degenerate"
      in
      let beta_ok =
        let rec check alpha =
          alpha = 1 lsl (n - 1)
          || (Connection.witness c alpha = Some (Pipid_net.beta ~n theta alpha)
             && check (alpha + 1))
        in
        check 1
      in
      result "  %-12s independent=%-3s routing-bit-slot=%-10s beta-formula=%s\n" name
        (bool_mark (Connection.is_independent c))
        slot (bool_mark beta_ok))
    (Family.all_named ~width:n)

(* C1: the Wu–Feng pairwise table, by this paper's machinery. *)
let c1 () =
  header "C1" "Main corollary: pairwise equivalence of the six classical networks (n = 4)";
  let nets = Classical.all_networks ~n:4 in
  result "%-26s" "";
  List.iter (fun (name, _) -> result " %-5s" (String.sub name 0 (min 5 (String.length name)))) nets;
  result "\n";
  List.iter
    (fun (name_i, gi) ->
      result "%-26s" name_i;
      List.iter
        (fun (_, gj) ->
          let eq = Equivalence.equivalent_networks Independence gi gj in
          result " %-5s" (if eq then "==" else "/="))
        nets;
      result "\n")
    nets;
  result "(== means both provably Baseline-equivalent via Theorem 3)\n"

(* X1: decider scaling. *)
let x1 () =
  header "X1" "The 'easy' claim: cost of the three deciders vs n (wall-clock, single run)";
  let time f =
    let t0 = Sys.time () in
    ignore (Sys.opaque_identity (f ()));
    (Sys.time () -. t0) *. 1000.0
  in
  result "%4s %16s %16s %16s %16s\n" "n" "independence(ms)" "character.(ms)" "iso-stage(ms)"
    "iso-generic(ms)";
  List.iter
    (fun n ->
      let g = Classical.network Omega ~n in
      let ti = time (fun () -> Equivalence.by_independence g) in
      let tc = time (fun () -> Equivalence.by_characterization g) in
      let ts = time (fun () -> Iso_min.to_baseline g) in
      let tg =
        if n <= 5 then Printf.sprintf "%16.3f" (time (fun () -> Equivalence.by_isomorphism g))
        else Printf.sprintf "%16s" "-"
      in
      result "%4d %16.3f %16.3f %16.3f %s\n" n ti tc ts tg)
    [ 3; 4; 5; 6; 7; 8; 9 ];
  result "independence also skips the Banyan check cost asymptotically: the\n";
  result "basis check is O(n 2^n) vs O(4^n) for path counting.\n"

(* X2: the Agrawal gap. *)
let x2 () =
  header "X2" "Buddy properties do not characterize equivalence (the [10] gap)";
  let r = rng 13 in
  let sample n trials =
    let banyan = ref 0 and noneq = ref 0 in
    for _ = 1 to trials do
      let g = Counterexample.random_buddy_network r ~n in
      if Banyan.is_banyan g then begin
        incr banyan;
        if not (Equivalence.by_characterization g).equivalent then incr noneq
      end
    done;
    (!banyan, !noneq)
  in
  let b3, ne3 = sample 3 4000 in
  let b4, ne4 = sample 4 4000 in
  result "n=3: %d buddy Banyans sampled, %d non-equivalent  => buddy suffices at n=3\n" b3 ne3;
  result "n=4: %d buddy Banyans sampled, %d non-equivalent  => buddy fails at n=4\n" b4 ne4;
  match Counterexample.find_non_equivalent r ~n:4 ~attempts:5000 ~require_buddy:true with
  | None -> result "no instance found (unexpected)\n"
  | Some g ->
      result "witness instance: banyan=%s buddy=%s P-characterization=%s iso=%s\n"
        (bool_mark (Banyan.is_banyan g))
        (bool_mark (Properties.has_buddy_property g))
        (bool_mark (Equivalence.by_characterization g).equivalent)
        (bool_mark (Equivalence.by_isomorphism g).equivalent)

(* X3: operational equivalence in the packet simulator. *)
let x3 () =
  header "X3" "Operational equivalence: isomorphic networks perform identically";
  let n = 5 in
  let config =
    { Mineq_sim.Network_sim.default_config with injection_rate = 1.0; cycles = 2000 }
  in
  result "saturation throughput under uniform traffic (n = %d, rate 1.0):\n" n;
  List.iter
    (fun (name, g) ->
      let s = Mineq_sim.Network_sim.run ~config (rng 14) g in
      result "  %-26s throughput=%.3f mean-latency=%.1f\n" name
        (Mineq_sim.Network_sim.throughput s)
        (Mineq_sim.Network_sim.mean_latency s))
    (Classical.all_networks ~n);
  (* Deterministic check: relabelling the network and the traffic
     through the same isomorphism gives identical circuit schedules. *)
  let g = Classical.network Omega ~n:4 in
  let h = Counterexample.relabelled_equivalent (rng 15) g in
  let p = Perm.random (rng 16) 16 in
  let pairs = List.init 16 (fun i -> (i, Perm.apply p i)) in
  let rounds_g = (Mineq_sim.Circuit.greedy_schedule g pairs).round_count in
  let avg_g = Mineq_sim.Circuit.average_rounds (rng 17) g ~samples:100 in
  let avg_h = Mineq_sim.Circuit.average_rounds (rng 17) h ~samples:100 in
  result "omega n=4: fixed permutation needs %d rounds; avg over 100 random perms:\n" rounds_g;
  result "  original %.2f vs relabelled-equivalent %.2f (should be statistically equal)\n"
    avg_g avg_h

(* X4: bit-directed routing. *)
let x4 () =
  header "X4" "Bit-directed (delta) routing on PIPID networks";
  let n = 4 in
  List.iter
    (fun (name, g) ->
      result "  %-26s delta=%-3s bidelta=%-3s\n" name
        (bool_mark (Routing.is_delta g))
        (bool_mark (Routing.is_bidelta g)))
    (Classical.all_networks ~n);
  let g = Baseline.network n in
  (match Routing.delta_schedule g with
  | Some schedule ->
      let spells_address =
        Array.for_all (fun o -> schedule.(o) = o) (Array.init (1 lsl n) (fun i -> i))
      in
      result "baseline port word = destination address: %s\n" (bool_mark spells_address)
  | None -> result "baseline unexpectedly not delta\n");
  let r = rng 18 in
  List.iter
    (fun (name, g) ->
      result "  %-26s admissible fraction of random permutations: %.4f\n" name
        (Routing.admissible_fraction r g ~samples:2000))
    (Classical.all_networks ~n)

(* X5: independence is sufficient, not necessary. *)
let x5 () =
  header "X5" "Independence is sufficient but not necessary for equivalence";
  let r = rng 19 in
  let g = Classical.network Omega ~n:4 in
  let h = Counterexample.relabelled_equivalent r g in
  let vi = Equivalence.by_independence h in
  let vc = Equivalence.by_characterization h in
  let viso = Equivalence.by_isomorphism h in
  result "randomly relabelled Omega (n=4):\n";
  result "  independence decider: %-3s (%s)\n" (bool_mark vi.equivalent) vi.detail;
  result "  characterization:     %-3s\n" (bool_mark vc.equivalent);
  result "  explicit isomorphism: %-3s\n" (bool_mark viso.equivalent);
  let still_pipid = ref 0 in
  for i = 1 to Mi_digraph.stages h - 1 do
    if Option.is_some (Render.recognize_gap h i) then incr still_pipid
  done;
  result "  gaps still recognizable as PIPID after relabelling: %d/%d\n" !still_pipid
    (Mi_digraph.stages h - 1)

(* X6: the radix generalization (the paper's closing remark). *)
let x6 () =
  header "X6" "Radix generalization: r x r cells over (Z_r)^m (paper's closing remark)";
  let module Rn = Mineq_radix.Rnetwork in
  let module Rb = Mineq_radix.Rbuild in
  List.iter
    (fun (radix, n) ->
      let base = Rb.baseline ~radix n in
      let om = Rb.omega ~radix n in
      result
        "r=%d n=%d (%d terminals): baseline char=%-3s | omega banyan=%-3s indep=%-3s \
         char=%-3s iso-to-baseline=%s\n"
        radix n (Rn.terminals om)
        (bool_mark (Rn.by_characterization base))
        (bool_mark (Rn.is_banyan om))
        (bool_mark (Rn.by_independence om))
        (bool_mark (Rn.by_characterization om))
        (if radix * n <= 12 then bool_mark (Rn.isomorphic om base) else "-"))
    [ (2, 4); (3, 3); (4, 3); (5, 2); (3, 4) ];
  (* Does the Theorem-3 analogue hold at radix 3?  Sample agreement
     between the independence decider and the characterization. *)
  let r = rng 20 in
  let agree = ref 0 and total = ref 0 in
  for _ = 1 to 400 do
    let g = Rb.random_pipid_network r ~radix:3 ~n:3 in
    if Rn.is_banyan g then begin
      incr total;
      if Rn.by_independence g && Rn.by_characterization g then incr agree
    end
  done;
  result
    "radix-3 Banyan PIPID stacks: %d/%d satisfy both independence and the \
     characterization\n"
    !agree !total;
  result "(evidence that Theorem 3's analogue survives the generalization)\n";
  (* The main corollary at radix 3: all six classical constructions,
     digit-directed routing included. *)
  let base3 = Rb.baseline ~radix:3 3 in
  result "the six classical constructions at radix 3 (27 terminals):\n";
  List.iter
    (fun (name, g) ->
      result "  %-26s banyan=%-3s indep=%-3s char=%-3s digit-routed=%-3s iso=%-3s\n" name
        (bool_mark (Rn.is_banyan g))
        (bool_mark (Rn.by_independence g))
        (bool_mark (Rn.by_characterization g))
        (bool_mark (Mineq_radix.Rrouting.is_delta g))
        (bool_mark (Rn.isomorphic g base3)))
    (Rb.all_networks ~radix:3 ~n:3)

(* X7: compositions -- Benes rearrangeability and affine stages. *)
let x7 () =
  header "X7" "Compositions: Benes rearrangeability and affine (PIPID xor offset) stages";
  let r = rng 21 in
  List.iter
    (fun n ->
      let net = Benes.network n in
      let samples = 50 in
      result
        "Benes B(%d): %d stages, banyan=%-3s (path diversity %d), %d/%d random \
         permutations routed link-disjoint by the looping algorithm\n"
        n (Cascade.stages net)
        (bool_mark (Cascade.is_banyan net))
        (1 lsl (n - 1))
        (if Benes.rearrangeable_check r ~n ~samples then samples else -1)
        samples)
    [ 2; 3; 4; 5 ];
  (* Affine stages: shuffle xor constant. *)
  let n = 4 in
  let theta = Family.perfect_shuffle ~width:n in
  let conns =
    List.init (n - 1) (fun i -> Pipid_net.affine_connection ~n theta ~offset:((2 * i) + 3))
  in
  let g = Mi_digraph.create conns in
  result "exchange-Omega (shuffle xor offset per gap, n=4): banyan=%s independent=%s\n"
    (bool_mark (Banyan.is_banyan g))
    (bool_mark (List.for_all Connection.is_independent (Mi_digraph.connections g)));
  result "  Theorem 3 verdict: %s / characterization: %s\n"
    (bool_mark (Equivalence.by_independence g).equivalent)
    (bool_mark (Equivalence.by_characterization g).equivalent)

(* X8: the realizable-permutation count as an equivalence invariant. *)
let x8 () =
  header "X8" "Realizable-permutation counts (one-pass functionality fingerprint)";
  let n = 3 in
  result "exact counts over all 2^(n 2^(n-1)) = 4096 switch settings (n = %d):\n" n;
  List.iter
    (fun (name, g) -> result "  %-26s %d distinct permutations\n" name (Realizable.count_exact g))
    (Classical.all_networks ~n);
  let r = rng 22 in
  let relab = Counterexample.relabelled_equivalent r (Classical.network Omega ~n) in
  result "  %-26s %d (count is an isomorphism invariant)\n" "relabelled omega"
    (Realizable.count_exact relab);
  (* Finding: every Banyan (equivalent or not) realizes all settings
     distinctly -- each switch carries exactly two of the unique
     paths, so the realized permutation determines the full setting.
     Injectivity of settings -> permutations is thus a Banyan
     signature; non-Banyan networks collapse settings. *)
  let banyan_counts = Hashtbl.create 8 in
  for _ = 1 to 200 do
    match Counterexample.random_banyan r ~n ~attempts:200 with
    | Some g ->
        let key = Realizable.count_exact g in
        Hashtbl.replace banyan_counts key
          (1 + Option.value ~default:0 (Hashtbl.find_opt banyan_counts key))
    | None -> ()
  done;
  let distinct =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) banyan_counts [] |> List.sort compare
  in
  result "  random Banyans (n=3): %s -- settings are injective on Banyans\n"
    (String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%d (x%d)" k v) distinct));
  let degenerate =
    Link_spec.network_of_thetas ~n
      [ Perm.identity n; Family.perfect_shuffle ~width:n ]
  in
  result "  non-Banyan (degenerate stage): %d < 4096 -- settings collapse\n"
    (Realizable.count_exact degenerate)

(* X9: fault tolerance -- the price of the unique path.  The two
   critical-fault sweeps and the per-gap impacts are independent
   closures, so they run on the engine pool. *)
let x9 () =
  header "X9" "Fault analysis: Banyan networks have zero tolerance; the Benes does not";
  let n = 4 in
  let c = Cascade.of_mi_digraph (Baseline.network n) in
  let benes = Benes.network n in
  let results =
    Engine.Pool.run ~jobs:!jobs (fun pool ->
        Engine.Pool.map_list pool
          (fun f -> f ())
          [ (fun () -> `Critical (Faults.critical_fault_count c));
            (fun () -> `Critical (Faults.critical_fault_count benes));
            (fun () ->
              `Impacts
                (List.map
                   (fun gap ->
                     (gap, Faults.impact c [ Faults.Link { gap; cell = 0; port = 0 } ]))
                   [ 1; 2; 3 ]));
            (fun () -> `Impact (Faults.impact benes [ Faults.Link { gap = 1; cell = 0; port = 0 } ]))
          ])
  in
  match results with
  | [ `Critical crit_c; `Critical crit_benes; `Impacts impacts; `Impact benes_impact ] ->
      result "baseline n=%d: %d/%d single-link faults disconnect at least one pair\n" n crit_c
        ((Cascade.stages c - 1) * Cascade.cells_per_stage c * 2);
      List.iter
        (fun (gap, i) ->
          result "  one gap-%d link: %d source/sink cell pairs disconnected (cone %d x %d)\n"
            gap i.Faults.disconnected_pairs (1 lsl (gap - 1))
            (1 lsl (n - gap - 1)))
        impacts;
      result "benes B(%d): %d/%d single-link faults disconnect any pair; " n crit_benes
        ((Cascade.stages benes - 1) * Cascade.cells_per_stage benes * 2);
      result "a gap-1 fault merely degrades %d pairs\n" benes_impact.Faults.degraded_pairs
  | _ -> assert false

(* X11: tree saturation under hot-spot traffic. *)
let x11 () =
  header "X11" "Tree saturation: a small hot-spot collapses global throughput";
  let n = 5 in
  let g = Classical.network Omega ~n in
  let replications = 5 in
  result "Omega n=%d, rate 0.9, 2000 cycles, hotspot = terminal 0; mean ± 95%% CI over %d seeds:\n"
    n replications;
  List.iter
    (fun fraction ->
      let metric rng =
        let pattern =
          if fraction = 0.0 then Mineq_sim.Traffic.uniform
          else Mineq_sim.Traffic.hotspot ~fraction ~target:0
        in
        let config =
          { Mineq_sim.Network_sim.default_config with
            injection_rate = 0.9;
            cycles = 2000;
            pattern
          }
        in
        Mineq_sim.Network_sim.throughput (Mineq_sim.Network_sim.run ~config rng g)
      in
      let summary =
        Engine.Batch.replicate ~jobs:!jobs
          ~root:(Engine.Seeds.fold 101 (int_of_float (fraction *. 100.0)))
          ~replications metric
      in
      result "  hotspot fraction %.2f: throughput %s\n" fraction
        (Format.asprintf "%a" Mineq_sim.Summary.pp summary))
    [ 0.0; 0.05; 0.1; 0.2; 0.4 ];
  result "(the hot output link saturates and backpressure spreads congestion\n";
  result " through the switch tree -- the classic MIN hot-spot pathology)\n"

(* X12: one extra stage buys (partial) fault tolerance. *)
let x12 () =
  header "X12" "Extra-stage networks: one more stage trades the Banyan property for redundancy";
  let n = 4 in
  let baseline_c = Cascade.of_mi_digraph (Baseline.network n) in
  let extra_conn =
    Link_spec.connection_of_link_perm ~n
      (Mineq_perm.Index_perm.induce ~width:n (Family.perfect_shuffle ~width:n))
  in
  let extra = Cascade.concat baseline_c (Cascade.create [ extra_conn ]) in
  let links c = (Cascade.stages c - 1) * Cascade.cells_per_stage c * 2 in
  List.iter
    (fun (name, c) ->
      result "  %-22s stages=%d paths/pair=%d banyan=%-3s critical links=%d/%d\n" name
        (Cascade.stages c)
        (Cascade.path_counts c).(0).(0)
        (bool_mark (Cascade.is_banyan c))
        (Faults.critical_fault_count c) (links c))
    [ ("baseline", baseline_c);
      ("baseline + 1 stage", extra);
      ("benes (n-1 extra)", Benes.network n)
    ]

(* X13: how the delta property relates to equivalence, empirically. *)
let x13 () =
  header "X13" "Delta property vs equivalence on buddy Banyans (Kruskal-Snir cross-check)";
  let r = rng 23 in
  let n = 4 in
  let cells = Array.make 4 0 in
  (* cells.(0): delta & equivalent, (1): delta & not, (2): not delta &
     equivalent, (3): neither. *)
  let samples = ref 0 in
  while !samples < 150 do
    match Counterexample.random_buddy_banyan r ~n ~attempts:2000 with
    | None -> samples := 150
    | Some g ->
        incr samples;
        let d = Routing.is_delta g in
        let e = (Equivalence.by_characterization g).equivalent in
        let idx = (if d then 0 else 2) + if e then 0 else 1 in
        cells.(idx) <- cells.(idx) + 1
  done;
  result "buddy Banyans at n=%d (150 samples):\n" n;
  result "  delta and equivalent:         %d\n" cells.(0);
  result "  delta and NOT equivalent:     %d\n" cells.(1);
  result "  not delta and equivalent:     %d\n" cells.(2);
  result "  not delta and NOT equivalent: %d\n" cells.(3);
  result
    "(Kruskal-Snir: bidelta networks are unique up to isomorphism; a 'delta &\n\
    \ not equivalent' count of zero is consistent with their theorem when the\n\
    \ instances are also delta in reverse)\n";
  (* Refine the delta & not-equivalent cell by the bidelta property. *)
  let bidelta_noneq = ref 0 and delta_noneq = ref 0 in
  let tries = ref 0 in
  while !delta_noneq < 10 && !tries < 200 do
    incr tries;
    match Counterexample.find_non_equivalent r ~n ~attempts:2000 ~require_buddy:true with
    | Some g when Routing.is_delta g ->
        incr delta_noneq;
        if Routing.is_bidelta g then incr bidelta_noneq
    | _ -> ()
  done;
  result "of %d delta-but-not-equivalent instances found, %d are bidelta\n" !delta_noneq
    !bidelta_noneq

(* X14: the simulator against Patel's analytic unbuffered model. *)
let x14 () =
  header "X14" "Simulator vs Patel's analytic model (unbuffered, uniform traffic)";
  let module A = Mineq_sim.Analytic in
  result "%4s %12s %12s %10s\n" "n" "analytic" "simulated" "ratio";
  List.iter
    (fun n ->
      let model = A.saturation ~n in
      let g = Classical.network Omega ~n in
      let config =
        { Mineq_sim.Network_sim.default_config with
          injection_rate = 1.0;
          cycles = 3000;
          buffer_capacity = 1;
          drop_on_full = true
        }
      in
      let sim =
        Mineq_sim.Network_sim.throughput (Mineq_sim.Network_sim.run ~config (rng 24) g)
      in
      result "%4d %12.4f %12.4f %10.3f\n" n model sim (sim /. model))
    [ 2; 3; 4; 5; 6; 7 ];
  result "(the simulator runs a little above the model: its capacity-1 queues\n";
  result " retain arbitration losers for a retry next cycle, which the\n";
  result " memoryless model does not credit -- the gap grows with depth; the\n";
  result " shape, saturation decaying like 4/(n+3), matches)\n"

(* X15: how many isomorphism classes do random Banyans occupy? *)
let x15 () =
  header "X15" "Census: isomorphism classes of random Banyan networks at n = 3";
  let r = rng 25 in
  let classes = Engine.Batch.sample_census ~jobs:!jobs ~root:25 ~n:3 ~samples:150 ~attempts:400 in
  let total = List.fold_left (fun acc c -> acc + List.length c.Census.members) 0 classes in
  result "%d random Banyans fall into %d isomorphism classes:\n" total (List.length classes);
  List.iteri
    (fun i cls ->
      result "  class %d: %3d members%s  buddy=%-3s delta=%-3s\n" (i + 1)
        (List.length cls.Census.members)
        (if Census.contains_baseline cls then "  <- the Baseline class" else "")
        (bool_mark (Properties.has_buddy_property cls.Census.representative))
        (bool_mark (Routing.is_delta cls.Census.representative)))
    classes;
  result "(the paper's theorem says the Baseline class is exactly the networks\n";
  result " with independent connections; the others are the Banyans its\n";
  result " machinery is designed to exclude)\n";
  (* Buddy Banyans at n = 4: how many classes does Agrawal's family
     split into? *)
  let rec draw k acc =
    if k = 0 then acc
    else
      match Counterexample.random_buddy_banyan r ~n:4 ~attempts:2000 with
      | None -> acc
      | Some g -> draw (k - 1) ((g, k) :: acc)
  in
  let buddy_classes = Engine.Batch.classify ~jobs:!jobs (draw 60 []) in
  result "60 buddy Banyans at n=4 fall into %d classes:\n" (List.length buddy_classes);
  List.iteri
    (fun i cls ->
      result "  class %d: %2d members%s\n" (i + 1)
        (List.length cls.Census.members)
        (if Census.contains_baseline cls then "  <- the Baseline class" else ""))
    buddy_classes

(* X16: reliability curves under multiple random faults. *)
let x16 () =
  header "X16" "Reliability: survival probability under k random link faults (n = 4)";
  let n = 4 in
  let baseline_c = Cascade.of_mi_digraph (Baseline.network n) in
  let extra =
    Cascade.concat baseline_c
      (Cascade.create
         [ Link_spec.connection_of_link_perm ~n
             (Mineq_perm.Index_perm.induce ~width:n (Family.perfect_shuffle ~width:n))
         ])
  in
  let benes = Benes.network n in
  let ks = [ 0; 1; 2; 3; 4; 6; 8 ] in
  result "%22s" "k faults:";
  List.iter (fun k -> result " %6d" k) ks;
  result "\n";
  List.iteri
    (fun row (name, c) ->
      let sweep =
        Engine.Batch.fault_survival ~jobs:!jobs ~root:(Engine.Seeds.fold 26 row) c ~faults:ks
          ~samples:400
      in
      result "%22s" name;
      List.iter (fun (_, p) -> result " %6.3f" p) sweep;
      result "\n")
    [ ("baseline", baseline_c); ("baseline + 1 stage", extra); ("benes", benes) ]

let all_experiments =
  [ ("F1", f1); ("F2", f2); ("F3", f3); ("F4", f4); ("F5", f5); ("T1", t1); ("P1", p1);
    ("L2", l2); ("T3", t3); ("S4", s4); ("C1", c1); ("X1", x1); ("X2", x2); ("X3", x3);
    ("X4", x4); ("X5", x5); ("X6", x6); ("X7", x7); ("X8", x8); ("X9", x9); ("X11", x11);
    ("X12", x12); ("X13", x13); ("X14", x14); ("X15", x15); ("X16", x16)
  ]

let () =
  (* Strip a `-j N` pair (worker domains) before treating the rest as
     experiment ids. *)
  let rec split_jobs = function
    | "-j" :: count :: rest -> (
        match int_of_string_opt count with
        | Some j when j >= 1 ->
            jobs := j;
            split_jobs rest
        | Some _ | None -> failwith "-j needs an integer >= 1")
    | id :: rest -> id :: split_jobs rest
    | [] -> []
  in
  let args = split_jobs (List.tl (Array.to_list Sys.argv)) in
  let requested =
    match args with
    | [] -> List.map fst all_experiments
    | ids -> List.map String.uppercase_ascii ids
  in
  List.iter
    (fun id ->
      match List.assoc_opt id all_experiments with
      | Some run -> run ()
      | None -> Printf.eprintf "unknown experiment id: %s\n" id)
    requested
